#pragma once

/// \file multitenant_homotopy.hpp
/// Slot-aware batched homotopies over the multi-tenant fused evaluator:
/// the glue that lets ONE BatchPathTracker round carry live paths from
/// SEVERAL solve requests.  Each tracker slot is assigned a tenant
/// (assign_slot); the tracker announces which slots the next chunk's
/// points belong to through bind_slots (newton::SlotAwareEvaluator),
/// and the wrapper translates slot -> tenant per point, binds the
/// tenant routing on the device evaluator, and runs each point's
/// CPU-side start system / gamma blend / projective assembly with that
/// tenant's OWN objects.  Per-point arithmetic is exactly
/// BatchedHomotopy's (affine) or BatchedProjectiveHomotopy's
/// (projective), so a path tracks bitwise identically whether its
/// request rides alone or coalesced -- the property the solve service's
/// cross-request batching rests on.

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/multitenant_evaluator.hpp"
#include "homotopy/projective.hpp"

namespace polyeval::service {

/// Projective geometry: per-tenant {ProjectiveSystem, patched
/// homogenized start evaluator, gamma}, all sharing one device
/// evaluator.  Mirrors BatchedProjectiveHomotopy slot-by-slot.
template <prec::RealScalar S>
class MultiTenantProjectiveHomotopy {
  using C = cplx::Complex<S>;

 public:
  using BatchedHomotopyTag = void;

  /// `slot_capacity` is the owning tracker's max_paths: the widest
  /// bind_slots id the wrapper must translate.
  MultiTenantProjectiveHomotopy(core::MultiTenantFusedEvaluator<S>& f,
                                std::size_t slot_capacity)
      : f_(f),
        max_batch_(f.batch_capacity()),
        s_eval_(f.dimension() + 1),
        s_vals_(f.dimension() + 1) {
    const unsigned n = f_.dimension();
    tenants_.resize(f_.max_tenants());
    slot_tenant_.assign(slot_capacity, kUnassigned);
    x_pts_.resize(max_batch_);
    for (auto& p : x_pts_) p.resize(n);
    f_chunk_.resize(max_batch_);
    for (auto& r : f_chunk_) r.resize(n);
    f_values_.resize(max_batch_ * std::size_t{n});
    fhat_.resize(max_batch_ * std::size_t{n});
    ghat_.resize(max_batch_ * std::size_t{n});
    fhat_jac_.resize(std::size_t{n} * (n + 1));
    fhat_v_.resize(n);
    chunk_tenants_.resize(max_batch_);
    inner_tenants_.resize(max_batch_);
  }

  [[nodiscard]] unsigned dimension() const noexcept {
    return f_.dimension() + 1;
  }
  [[nodiscard]] unsigned affine_dimension() const noexcept {
    return f_.dimension();
  }
  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

  /// Install tenant `tenant`: the device tables (via the shared
  /// evaluator) plus this wrapper's CPU-side per-tenant state.  The
  /// BatchedProjectiveHomotopy constructor checks, repeated per tenant.
  void set_tenant(unsigned tenant, const poly::PolynomialSystem& target,
                  const poly::PolynomialSystem& start_system,
                  cplx::Complex<double> gamma,
                  std::span<const cplx::Complex<double>> patch) {
    if (tenant >= tenants_.size())
      throw std::invalid_argument("MultiTenantProjectiveHomotopy: bad tenant");
    if (start_system.degrees() != target.degrees())
      throw std::invalid_argument(
          "MultiTenantProjectiveHomotopy: start system degrees must match");
    f_.set_tenant(tenant, target);
    tenants_[tenant].emplace(target, start_system, gamma, patch);
  }

  void clear_tenant(unsigned tenant) {
    if (tenant < tenants_.size()) tenants_[tenant].reset();
    f_.clear_tenant(tenant);
  }

  /// Declare that tracker slot `slot` carries a path of `tenant`.
  void assign_slot(std::size_t slot, unsigned tenant) {
    if (slot >= slot_tenant_.size())
      throw std::invalid_argument("MultiTenantProjectiveHomotopy: bad slot");
    if (tenant >= tenants_.size() || !tenants_[tenant])
      throw std::invalid_argument(
          "MultiTenantProjectiveHomotopy: slot bound to absent tenant");
    slot_tenant_[slot] = tenant;
  }

  /// SlotAwareEvaluator hook: points[first+i] of the following
  /// evaluate calls belongs to tracker slot ids[first+i].  The span
  /// must outlive those calls (the tracker binds its own id vectors).
  void bind_slots(std::span<const std::size_t> ids) { bound_ = ids; }

  /// BatchedProjectiveHomotopy::evaluate_range, with each point's
  /// dehomogenization, start evaluation and assembly delegated to its
  /// slot's tenant and the device launch routed per point.
  void evaluate_range(const std::vector<std::vector<C>>& points,
                      std::span<const C> ts, std::size_t first,
                      std::size_t count, std::span<C> values,
                      std::span<C> jacobians) {
    const unsigned n = affine_dimension();
    const unsigned np1 = n + 1;
    const std::size_t nn1 = std::size_t{np1} * np1;
    if (count > max_batch_ || ts.size() < first + count ||
        values.size() < count * np1 || jacobians.size() < count * nn1)
      throw std::invalid_argument(
          "MultiTenantProjectiveHomotopy: bad batch spans");

    for (std::size_t i = 0; i < count; ++i) {
      const Tenant& ten = tenant_of(first + i, &chunk_tenants_[i]);
      inner_tenants_[i] = chunk_tenants_[i];
      ten.ps.dehomogenize_into(std::span<const C>(points[first + i]),
                               std::span<C>(x_pts_[i]));
    }
    f_.bind_tenants(std::span<const unsigned>(inner_tenants_.data(), count));
    f_.evaluate_range(x_pts_, 0, count,
                      std::span<poly::EvalResult<S>>(f_chunk_).subspan(0, count));
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot = first + i;
      const Tenant& ten = *tenants_[chunk_tenants_[i]];
      const auto z = std::span<const C>(points[slot]);
      ten.g.evaluate(z, s_eval_);
      homotopy::detail::assemble_projective<S>(
          ten.ps, ten.gamma, ts[slot], z, std::span<const C>(x_pts_[i]),
          std::span<const C>(f_chunk_[i].values),
          std::span<const C>(f_chunk_[i].jacobian),
          std::span<const C>(s_eval_.values),
          std::span<const C>(s_eval_.jacobian),
          std::span<C>(fhat_).subspan(i * n, n),
          std::span<C>(ghat_).subspan(i * n, n), std::span<C>(fhat_jac_),
          values.subspan(i * np1, np1), jacobians.subspan(i * nn1, nn1));
    }
  }

  /// Values-only counterpart, any count (max_batch-sized launches).
  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::span<const C> ts, std::size_t first,
                             std::size_t count, std::span<C> values) {
    const unsigned n = affine_dimension();
    const unsigned np1 = n + 1;
    if (ts.size() < first + count || values.size() < count * np1)
      throw std::invalid_argument(
          "MultiTenantProjectiveHomotopy: bad batch spans");

    for (std::size_t c0 = 0; c0 < count; c0 += max_batch_) {
      const std::size_t cnt = std::min(max_batch_, count - c0);
      for (std::size_t i = 0; i < cnt; ++i) {
        unsigned id;
        const Tenant& ten = tenant_of(first + c0 + i, &id);
        inner_tenants_[i] = id;
        ten.ps.dehomogenize_into(std::span<const C>(points[first + c0 + i]),
                                 std::span<C>(x_pts_[i]));
      }
      f_.bind_tenants(std::span<const unsigned>(inner_tenants_.data(), cnt));
      f_.evaluate_values_range(x_pts_, 0, cnt,
                               std::span<C>(f_values_).subspan(0, cnt * n));
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::size_t slot = c0 + i;
        const Tenant& ten = *tenants_[inner_tenants_[i]];
        const auto z = std::span<const C>(points[first + slot]);
        ten.g.evaluate_values(z, std::span<C>(s_vals_));
        homotopy::detail::assemble_projective_values<S>(
            ten.ps, ten.gamma, ts[first + slot], z,
            std::span<const C>(f_values_).subspan(i * n, n),
            std::span<const C>(s_vals_), std::span<C>(fhat_v_),
            values.subspan(slot * np1, np1));
      }
    }
  }

  /// Davidenko rhs of chunk slot i of the last evaluate_range, with
  /// that point's tenant gamma; the patch row is zero.
  void rhs_from_last(std::size_t i, std::span<C> out) const {
    const unsigned n = affine_dimension();
    const C gamma = tenants_[chunk_tenants_[i]]->gamma;
    for (unsigned q = 0; q < n; ++q)
      out[q] = homotopy::detail::davidenko_rhs(gamma, fhat_[i * n + q],
                                               ghat_[i * n + q]);
    out[n] = C{};
  }

  /// Slot-aware projective hooks (BatchPathTracker::kSlotProjective):
  /// each slot renormalizes onto ITS tenant's patch.
  void renormalize(std::size_t slot, std::span<C> z) const {
    tenants_[tenant_id(slot)]->ps.renormalize(z);
  }
  [[nodiscard]] double infinity_ratio(std::size_t slot,
                                      std::span<const C> z) const {
    return tenants_[tenant_id(slot)]->ps.infinity_ratio(z);
  }

 private:
  static constexpr unsigned kUnassigned = ~0u;

  struct Tenant {
    Tenant(const poly::PolynomialSystem& target,
           const poly::PolynomialSystem& start_system,
           cplx::Complex<double> gamma_in,
           std::span<const cplx::Complex<double>> patch)
        : ps(target, patch),
          g(homotopy::homogenize(start_system, patch)),
          gamma(C::from_double(gamma_in)) {}

    homotopy::detail::ProjectiveSystem<S> ps;
    ad::CpuEvaluator<S> g;  ///< patched homogenized start system
    C gamma;
  };

  [[nodiscard]] unsigned tenant_id(std::size_t slot) const {
    if (slot >= slot_tenant_.size() || slot_tenant_[slot] == kUnassigned)
      throw std::logic_error(
          "MultiTenantProjectiveHomotopy: unassigned slot evaluated");
    return slot_tenant_[slot];
  }
  [[nodiscard]] const Tenant& tenant_of(std::size_t point_index,
                                        unsigned* id_out) const {
    if (bound_.size() <= point_index)
      throw std::logic_error(
          "MultiTenantProjectiveHomotopy: evaluate without bind_slots");
    const unsigned id = tenant_id(bound_[point_index]);
    *id_out = id;
    return *tenants_[id];
  }

  core::MultiTenantFusedEvaluator<S>& f_;
  std::size_t max_batch_;
  std::vector<std::optional<Tenant>> tenants_;
  std::vector<unsigned> slot_tenant_;
  std::span<const std::size_t> bound_;  ///< slot ids of the next chunk

  poly::EvalResult<S> s_eval_;
  std::vector<C> s_vals_;
  std::vector<std::vector<C>> x_pts_;
  std::vector<poly::EvalResult<S>> f_chunk_;
  std::vector<C> f_values_;
  std::vector<C> fhat_, ghat_;
  std::vector<C> fhat_jac_;
  std::vector<C> fhat_v_;
  std::vector<unsigned> chunk_tenants_;  ///< tenant of each chunk slot
  std::vector<unsigned> inner_tenants_;  ///< device-launch routing staging
};

/// Affine geometry: per-tenant {start evaluator, gamma} blended as
/// BatchedHomotopy, slot-routed like the projective wrapper.
template <prec::RealScalar S>
class MultiTenantAffineHomotopy {
  using C = cplx::Complex<S>;

 public:
  using BatchedHomotopyTag = void;

  MultiTenantAffineHomotopy(core::MultiTenantFusedEvaluator<S>& f,
                            std::size_t slot_capacity)
      : f_(f),
        max_batch_(f.batch_capacity()),
        g_eval_(f.dimension()),
        g_vals_(f.dimension()) {
    const unsigned n = f_.dimension();
    tenants_.resize(f_.max_tenants());
    slot_tenant_.assign(slot_capacity, kUnassigned);
    f_chunk_.resize(max_batch_);
    for (auto& r : f_chunk_) r.resize(n);
    f_values_.resize(max_batch_ * std::size_t{n});
    g_values_.resize(max_batch_ * std::size_t{n});
    chunk_tenants_.resize(max_batch_);
    // The affine wrapper hands `points` straight through to the device
    // evaluator, so the routing buffer is indexed absolutely and must
    // cover any first + count the tracker can produce.
    inner_tenants_.resize(slot_capacity + max_batch_);
  }

  [[nodiscard]] unsigned dimension() const noexcept { return f_.dimension(); }
  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

  void set_tenant(unsigned tenant, const poly::PolynomialSystem& target,
                  const poly::PolynomialSystem& start_system,
                  cplx::Complex<double> gamma) {
    if (tenant >= tenants_.size())
      throw std::invalid_argument("MultiTenantAffineHomotopy: bad tenant");
    f_.set_tenant(tenant, target);
    tenants_[tenant].emplace(start_system, gamma);
  }

  void clear_tenant(unsigned tenant) {
    if (tenant < tenants_.size()) tenants_[tenant].reset();
    f_.clear_tenant(tenant);
  }

  void assign_slot(std::size_t slot, unsigned tenant) {
    if (slot >= slot_tenant_.size())
      throw std::invalid_argument("MultiTenantAffineHomotopy: bad slot");
    if (tenant >= tenants_.size() || !tenants_[tenant])
      throw std::invalid_argument(
          "MultiTenantAffineHomotopy: slot bound to absent tenant");
    slot_tenant_[slot] = tenant;
  }

  void bind_slots(std::span<const std::size_t> ids) { bound_ = ids; }

  /// BatchedHomotopy::evaluate_range with per-slot tenant g and gamma.
  void evaluate_range(const std::vector<std::vector<C>>& points,
                      std::span<const C> ts, std::size_t first,
                      std::size_t count, std::span<C> values,
                      std::span<C> jacobians) {
    const unsigned n = dimension();
    const std::size_t nn = std::size_t{n} * n;
    if (count > max_batch_ || ts.size() < first + count ||
        values.size() < count * n || jacobians.size() < count * nn)
      throw std::invalid_argument("MultiTenantAffineHomotopy: bad batch spans");

    route(first, count);
    for (std::size_t i = 0; i < count; ++i)
      chunk_tenants_[i] = inner_tenants_[first + i];
    f_.bind_tenants(
        std::span<const unsigned>(inner_tenants_.data(), first + count));
    f_.evaluate_range(points, first, count,
                      std::span<poly::EvalResult<S>>(f_chunk_).subspan(0, count));
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot = first + i;
      const Tenant& ten = *tenants_[chunk_tenants_[i]];
      ten.g.evaluate(std::span<const C>(points[slot]), g_eval_);
      std::copy(f_chunk_[i].values.begin(), f_chunk_[i].values.end(),
                f_values_.begin() + i * n);
      std::copy(g_eval_.values.begin(), g_eval_.values.end(),
                g_values_.begin() + i * n);
      const homotopy::detail::GammaBlend<S> blend(ten.gamma, ts[slot]);
      for (unsigned q = 0; q < n; ++q)
        values[i * n + q] =
            blend.combine(g_eval_.values[q], f_chunk_[i].values[q]);
      for (std::size_t e = 0; e < nn; ++e)
        jacobians[i * nn + e] =
            blend.combine(g_eval_.jacobian[e], f_chunk_[i].jacobian[e]);
    }
  }

  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::span<const C> ts, std::size_t first,
                             std::size_t count, std::span<C> values) {
    const unsigned n = dimension();
    if (ts.size() < first + count || values.size() < count * n)
      throw std::invalid_argument("MultiTenantAffineHomotopy: bad batch spans");

    route(first, count);
    f_.bind_tenants(
        std::span<const unsigned>(inner_tenants_.data(), first + count));
    for (std::size_t c0 = 0; c0 < count; c0 += max_batch_) {
      const std::size_t cnt = std::min(max_batch_, count - c0);
      f_.evaluate_values_range(points, first + c0, cnt,
                               std::span<C>(values).subspan(c0 * n, cnt * n));
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::size_t slot = c0 + i;
        const Tenant& ten = *tenants_[inner_tenants_[first + slot]];
        ten.g.evaluate_values(std::span<const C>(points[first + slot]),
                              std::span<C>(g_vals_));
        const homotopy::detail::GammaBlend<S> blend(ten.gamma,
                                                    ts[first + slot]);
        for (unsigned q = 0; q < n; ++q)
          values[slot * n + q] = blend.combine(g_vals_[q], values[slot * n + q]);
      }
    }
  }

  void rhs_from_last(std::size_t i, std::span<C> out) const {
    const unsigned n = dimension();
    const C gamma = tenants_[chunk_tenants_[i]]->gamma;
    for (unsigned q = 0; q < n; ++q)
      out[q] = homotopy::detail::davidenko_rhs(gamma, f_values_[i * n + q],
                                               g_values_[i * n + q]);
  }

 private:
  static constexpr unsigned kUnassigned = ~0u;

  struct Tenant {
    Tenant(const poly::PolynomialSystem& start_system,
           cplx::Complex<double> gamma_in)
        : g(start_system), gamma(C::from_double(gamma_in)) {}

    ad::CpuEvaluator<S> g;
    C gamma;
  };

  /// Fill the absolute-indexed routing buffer for [first, first+count).
  void route(std::size_t first, std::size_t count) {
    if (bound_.size() < first + count)
      throw std::logic_error(
          "MultiTenantAffineHomotopy: evaluate without bind_slots");
    if (inner_tenants_.size() < first + count)
      inner_tenants_.resize(first + count);
    for (std::size_t i = first; i < first + count; ++i) {
      const std::size_t slot = bound_[i];
      if (slot >= slot_tenant_.size() || slot_tenant_[slot] == kUnassigned)
        throw std::logic_error(
            "MultiTenantAffineHomotopy: unassigned slot evaluated");
      inner_tenants_[i] = slot_tenant_[slot];
    }
  }

  core::MultiTenantFusedEvaluator<S>& f_;
  std::size_t max_batch_;
  std::vector<std::optional<Tenant>> tenants_;
  std::vector<unsigned> slot_tenant_;
  std::span<const std::size_t> bound_;

  poly::EvalResult<S> g_eval_;
  std::vector<C> g_vals_;
  std::vector<poly::EvalResult<S>> f_chunk_;
  std::vector<C> f_values_, g_values_;
  std::vector<unsigned> chunk_tenants_;
  std::vector<unsigned> inner_tenants_;
};

}  // namespace polyeval::service
