#pragma once

/// \file system_cache.hpp
/// Structure-hash-keyed cache of everything a solve request needs that
/// does not depend on the request's start points: the packed/encoded
/// system tables, the total-degree start system, and the autotuner's
/// resolved launch geometry for this structure.  Requests hitting the
/// cache skip packing, Bezout bookkeeping and the tuning probe entirely
/// -- the admission-time costs the solve service amortizes across a
/// stream of similar requests.
///
/// The hash is INJECTABLE and only buckets: every lookup compares the
/// packed tables field-by-field inside the bucket, so a colliding hash
/// (tests inject a constant one) can never alias two different systems
/// into one entry -- it only makes lookups slower.  The resolved tune
/// geometry comes from constructing one scratch single-tenant
/// FusedGpuEvaluator, whose constructor resolves through
/// tune::Autotuner::global(): the first request with a structure pays
/// the measured probe, every later one is a TuneCache hit
/// (Autotuner::global().hits() observes the reuse across requests).
///
/// Geometry is PER DEVICE SPEC: an entry holds one resolved geometry
/// per distinct spec in the caller's fleet, each probed on a scratch
/// device of THAT spec (TuneKey carries the full device geometry, so
/// the global TuneCache keeps them apart too).  The old single-slot
/// scheme silently pinned shard 0's winner on every shard of a mixed
/// fleet -- a 32-wide choice for a device whose residency limits want
/// 128.  Uniform fleets resolve exactly once, as before.

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/fused_evaluator.hpp"
#include "homotopy/start_system.hpp"

namespace polyeval::service {

/// FNV-1a over the packed tables (structure, support, exponents,
/// coefficient bits): the default content hash.
[[nodiscard]] inline std::uint64_t hash_packed_system(
    const core::PackedSystem& packed) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto& s = packed.structure;
  mix(s.n);
  mix(s.m);
  mix(s.k);
  mix(s.d);
  for (const unsigned char b : packed.positions) mix(b);
  for (const unsigned char b : packed.exponents) mix(b);
  for (const auto& c : packed.coeffs) {
    std::uint64_t bits;
    double re = c.re(), im = c.im();
    static_assert(sizeof(bits) == sizeof(re));
    std::memcpy(&bits, &re, sizeof(bits));
    mix(bits);
    std::memcpy(&bits, &im, sizeof(bits));
    mix(bits);
  }
  return h;
}

/// Full content equality (the bucket scan's discriminator).
[[nodiscard]] inline bool packed_systems_equal(const core::PackedSystem& a,
                                               const core::PackedSystem& b) {
  return a.structure == b.structure && a.positions == b.positions &&
         a.exponents == b.exponents && a.coeffs == b.coeffs;
}

template <prec::RealScalar S>
class SystemCache {
 public:
  using Hasher = std::function<std::uint64_t(const core::PackedSystem&)>;

  /// Launch geometry the autotuner resolved for one device spec.
  struct TunedGeometry {
    simt::DeviceSpec spec;
    unsigned block = 0;
    std::optional<core::InterchangeLayout> interchange;
  };

  struct Entry {
    poly::PolynomialSystem system;  ///< the target, as submitted
    core::PackedSystem packed;
    homotopy::TotalDegreeStart start;
    /// Resolved geometry per distinct device spec, at `tuned_capacity`
    /// points (the service's evaluator batch size).  One element for a
    /// uniform fleet; grown lazily as lookups bring new specs.
    std::vector<TunedGeometry> geometries;
    unsigned tuned_capacity = 0;
    tune::TuningMode tuned_mode = tune::TuningMode::kMeasured;

    Entry(const poly::PolynomialSystem& target, core::PackedSystem p)
        : system(target), packed(std::move(p)), start(target) {}

    /// The resolved geometry for `spec`; an entry returned by lookup()
    /// always covers every spec the lookup was made with.
    [[nodiscard]] const TunedGeometry* geometry_for(
        const simt::DeviceSpec& spec) const {
      for (const auto& g : geometries)
        if (g.spec == spec) return &g;
      return nullptr;
    }
  };

  explicit SystemCache(Hasher hasher = {})
      : hasher_(hasher ? std::move(hasher) : Hasher(&hash_packed_system)) {}

  /// Find-or-create the entry for `target`, resolving the tune geometry
  /// for `capacity`-point batches under `mode` on each of the fleet's
  /// `specs` (deduplicated; empty means one default-spec device).  A
  /// content hit re-resolves only what changed: everything when
  /// capacity/mode moved, just the missing specs when the fleet grew.
  std::shared_ptr<const Entry> lookup(
      const poly::PolynomialSystem& target, unsigned capacity,
      tune::TuningMode mode, std::span<const simt::DeviceSpec> specs = {}) {
    static const simt::DeviceSpec default_spec = simt::DeviceSpec::tesla_c2050();
    if (specs.empty()) specs = std::span<const simt::DeviceSpec>(&default_spec, 1);
    core::PackedSystem packed = core::pack_system(target);
    auto& bucket = buckets_[hasher_(packed)];
    for (const auto& e : bucket) {
      if (packed_systems_equal(e->packed, packed)) {
        if (e->tuned_capacity != capacity || e->tuned_mode != mode)
          e->geometries.clear();
        resolve_missing(*e, capacity, mode, specs);
        ++hits_;
        return e;
      }
    }
    ++misses_;
    auto entry = std::make_shared<Entry>(target, std::move(packed));
    resolve_missing(*entry, capacity, mode, specs);
    bucket.push_back(entry);
    return entry;
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& [h, bucket] : buckets_) n += bucket.size();
    return n;
  }

 private:
  /// Resolve geometry for every spec in `specs` the entry does not
  /// already cover, one scratch single-tenant evaluator per DISTINCT
  /// uncovered spec -- probed on a device of that spec, so no shard
  /// inherits another geometry's winner.  Later same-structure
  /// constructions (and every multi-tenant evaluator pinned from this
  /// entry) skip the probe.
  static void resolve_missing(Entry& entry, unsigned capacity,
                              tune::TuningMode mode,
                              std::span<const simt::DeviceSpec> specs) {
    for (const auto& spec : specs) {
      if (entry.geometry_for(spec) != nullptr) continue;  // covered (dedups too)
      simt::Device probe(spec);  // scratch: the measured probe builds its own anyway
      typename core::FusedGpuEvaluator<S>::Options opts;
      opts.tuning = mode;
      core::FusedGpuEvaluator<S> scratch(probe, entry.system, capacity, opts);
      entry.geometries.push_back(
          {spec, scratch.options().block_size, scratch.options().interchange});
    }
    entry.tuned_capacity = capacity;
    entry.tuned_mode = mode;
  }

  Hasher hasher_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>>
      buckets_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace polyeval::service
