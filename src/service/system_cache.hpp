#pragma once

/// \file system_cache.hpp
/// Structure-hash-keyed cache of everything a solve request needs that
/// does not depend on the request's start points: the packed/encoded
/// system tables, the total-degree start system, and the autotuner's
/// resolved launch geometry for this structure.  Requests hitting the
/// cache skip packing, Bezout bookkeeping and the tuning probe entirely
/// -- the admission-time costs the solve service amortizes across a
/// stream of similar requests.
///
/// The hash is INJECTABLE and only buckets: every lookup compares the
/// packed tables field-by-field inside the bucket, so a colliding hash
/// (tests inject a constant one) can never alias two different systems
/// into one entry -- it only makes lookups slower.  The resolved tune
/// geometry comes from constructing one scratch single-tenant
/// FusedGpuEvaluator, whose constructor resolves through
/// tune::Autotuner::global(): the first request with a structure pays
/// the measured probe, every later one is a TuneCache hit
/// (Autotuner::global().hits() observes the reuse across requests).

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/fused_evaluator.hpp"
#include "homotopy/start_system.hpp"

namespace polyeval::service {

/// FNV-1a over the packed tables (structure, support, exponents,
/// coefficient bits): the default content hash.
[[nodiscard]] inline std::uint64_t hash_packed_system(
    const core::PackedSystem& packed) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto& s = packed.structure;
  mix(s.n);
  mix(s.m);
  mix(s.k);
  mix(s.d);
  for (const unsigned char b : packed.positions) mix(b);
  for (const unsigned char b : packed.exponents) mix(b);
  for (const auto& c : packed.coeffs) {
    std::uint64_t bits;
    double re = c.re(), im = c.im();
    static_assert(sizeof(bits) == sizeof(re));
    std::memcpy(&bits, &re, sizeof(bits));
    mix(bits);
    std::memcpy(&bits, &im, sizeof(bits));
    mix(bits);
  }
  return h;
}

/// Full content equality (the bucket scan's discriminator).
[[nodiscard]] inline bool packed_systems_equal(const core::PackedSystem& a,
                                               const core::PackedSystem& b) {
  return a.structure == b.structure && a.positions == b.positions &&
         a.exponents == b.exponents && a.coeffs == b.coeffs;
}

template <prec::RealScalar S>
class SystemCache {
 public:
  using Hasher = std::function<std::uint64_t(const core::PackedSystem&)>;

  struct Entry {
    poly::PolynomialSystem system;  ///< the target, as submitted
    core::PackedSystem packed;
    homotopy::TotalDegreeStart start;
    /// Launch geometry the autotuner resolved for this structure at
    /// `tuned_capacity` points (the service's evaluator batch size).
    unsigned tuned_block = 0;
    std::optional<core::InterchangeLayout> tuned_interchange;
    unsigned tuned_capacity = 0;
    tune::TuningMode tuned_mode = tune::TuningMode::kMeasured;

    Entry(const poly::PolynomialSystem& target, core::PackedSystem p)
        : system(target), packed(std::move(p)), start(target) {}
  };

  explicit SystemCache(Hasher hasher = {})
      : hasher_(hasher ? std::move(hasher) : Hasher(&hash_packed_system)) {}

  /// Find-or-create the entry for `target`, resolving the tune geometry
  /// for `capacity`-point batches under `mode` on a miss (or when the
  /// cached geometry was resolved for a different capacity/mode).
  std::shared_ptr<const Entry> lookup(const poly::PolynomialSystem& target,
                                      unsigned capacity,
                                      tune::TuningMode mode) {
    core::PackedSystem packed = core::pack_system(target);
    auto& bucket = buckets_[hasher_(packed)];
    for (const auto& e : bucket) {
      if (packed_systems_equal(e->packed, packed)) {
        if (e->tuned_capacity != capacity || e->tuned_mode != mode)
          resolve_tuning(*e, capacity, mode);
        ++hits_;
        return e;
      }
    }
    ++misses_;
    auto entry = std::make_shared<Entry>(target, std::move(packed));
    resolve_tuning(*entry, capacity, mode);
    bucket.push_back(entry);
    return entry;
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& [h, bucket] : buckets_) n += bucket.size();
    return n;
  }

 private:
  /// One scratch single-tenant evaluator resolves the launch geometry
  /// through the global autotuner; later same-structure constructions
  /// (and every multi-tenant evaluator pinned from this entry) skip the
  /// probe.
  static void resolve_tuning(Entry& entry, unsigned capacity,
                             tune::TuningMode mode) {
    simt::Device probe;  // scratch: the measured probe builds its own anyway
    typename core::FusedGpuEvaluator<S>::Options opts;
    opts.tuning = mode;
    core::FusedGpuEvaluator<S> scratch(probe, entry.system, capacity, opts);
    entry.tuned_block = scratch.options().block_size;
    entry.tuned_interchange = scratch.options().interchange;
    entry.tuned_capacity = capacity;
    entry.tuned_mode = mode;
  }

  Hasher hasher_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>>
      buckets_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace polyeval::service
