#pragma once

/// \file request.hpp
/// The solve service's request/response surface: what a client submits
/// (SolveRequest), what submit() hands back (SolveTicket -- the
/// admission verdict plus a handle for progress polling, cooperative
/// cancellation and the final report), and the small lock-free state
/// block the two sides share.  Tickets are cheap shared_ptr handles:
/// poll() and cancel() touch only atomics, so an async client thread
/// can watch a request while the service thread ticks rounds.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "poly/system.hpp"
#include "solve/options.hpp"
#include "solve/report.hpp"

namespace polyeval::service {

/// Backpressure verdict of SolveService::submit.
enum class AdmissionVerdict {
  kAdmitted,            ///< queued; track via the ticket
  kQueueFull,           ///< bounded queue at capacity -- resubmit later
  kPathBudgetExceeded,  ///< more paths than the per-request budget
  kInvalid,             ///< malformed options or non-uniform system
};

[[nodiscard]] constexpr const char* to_string(AdmissionVerdict v) noexcept {
  switch (v) {
    case AdmissionVerdict::kAdmitted: return "admitted";
    case AdmissionVerdict::kQueueFull: return "queue_full";
    case AdmissionVerdict::kPathBudgetExceeded: return "path_budget_exceeded";
    case AdmissionVerdict::kInvalid: return "invalid";
  }
  return "unknown";
}

/// Request lifecycle, observable through SolveTicket::poll.
enum class RequestStatus {
  kRejected,  ///< never admitted (see the ticket's verdict)
  kQueued,    ///< admitted, waiting for a tenant slot
  kTracking,  ///< live paths riding lockstep rounds
  kDone,      ///< report finalized (all paths retired or cancelled)
};

[[nodiscard]] constexpr const char* to_string(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kQueued: return "queued";
    case RequestStatus::kTracking: return "tracking";
    case RequestStatus::kDone: return "done";
  }
  return "unknown";
}

/// One solve request.  By default the service derives the total-degree
/// start system, start roots and gamma from `options` (and caches the
/// derivation per structure); `start` overrides all three for callers
/// bridging existing pipelines (the one-shot sharded solver) or
/// tracking a custom subset of paths.
template <prec::RealScalar S>
struct SolveRequest {
  poly::PolynomialSystem target;
  solve::Options options;

  /// Explicit start data (optional).  `roots` are AFFINE start points;
  /// the service embeds them into the patch in projective geometry.
  struct StartData {
    poly::PolynomialSystem system;
    std::vector<std::vector<cplx::Complex<S>>> roots;
    cplx::Complex<double> gamma;
  };
  std::optional<StartData> start;

  /// Cancel the request after this many service ticks spent tracking
  /// (0 = unlimited).  Deterministic -- the test-friendly deadline.
  std::uint64_t round_budget = 0;
  /// Cancel once the service's modeled device clock has advanced this
  /// many microseconds past admission (0 = none).
  double modeled_deadline_us = 0.0;
};

/// Progress snapshot (one relaxed-atomic read per field).
struct Progress {
  RequestStatus status = RequestStatus::kQueued;
  std::uint64_t paths_total = 0;
  std::uint64_t paths_retired = 0;
  std::uint64_t rounds = 0;  ///< lockstep rounds this request rode in
  [[nodiscard]] bool done() const noexcept {
    return status == RequestStatus::kDone || status == RequestStatus::kRejected;
  }
};

namespace detail {

/// The shared state block behind a ticket.  The service owns the
/// non-atomic fields; clients may only touch the atomics until
/// `status` reads kDone (the release/acquire pair that publishes the
/// report).
template <prec::RealScalar S>
struct RequestState {
  explicit RequestState(SolveRequest<S> req) : request(std::move(req)) {}

  std::uint64_t id = 0;
  AdmissionVerdict verdict = AdmissionVerdict::kAdmitted;
  SolveRequest<S> request;

  std::atomic<RequestStatus> status{RequestStatus::kQueued};
  std::atomic<bool> cancel_requested{false};
  std::atomic<std::uint64_t> paths_total{0};
  std::atomic<std::uint64_t> paths_retired{0};
  std::atomic<std::uint64_t> rounds{0};

  solve::Report<S> report;  ///< valid once status == kDone
};

}  // namespace detail

/// The client half of a submitted request.
template <prec::RealScalar S>
class SolveTicket {
 public:
  SolveTicket() = default;
  explicit SolveTicket(std::shared_ptr<detail::RequestState<S>> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return checked().id; }
  [[nodiscard]] AdmissionVerdict verdict() const { return checked().verdict; }
  [[nodiscard]] bool admitted() const {
    return valid() && state_->verdict == AdmissionVerdict::kAdmitted;
  }

  /// Thread-safe progress snapshot.
  [[nodiscard]] Progress poll() const {
    const auto& s = checked();
    Progress p;
    p.status = s.status.load(std::memory_order_acquire);
    p.paths_total = s.paths_total.load(std::memory_order_relaxed);
    p.paths_retired = s.paths_retired.load(std::memory_order_relaxed);
    p.rounds = s.rounds.load(std::memory_order_relaxed);
    return p;
  }
  [[nodiscard]] bool done() const { return poll().done(); }

  /// Cooperative cancellation: flags the request; the service retires
  /// its live paths as kCancelled at the next round boundary (no
  /// launches spent on them) and skips its unstarted paths.
  void cancel() const {
    checked().cancel_requested.store(true, std::memory_order_release);
  }

  /// The final report; call only after done() (throws otherwise).
  [[nodiscard]] const solve::Report<S>& report() const {
    const auto& s = checked();
    if (s.status.load(std::memory_order_acquire) != RequestStatus::kDone)
      throw std::logic_error("SolveTicket: report() before completion");
    return s.report;
  }

 private:
  [[nodiscard]] detail::RequestState<S>& checked() const {
    if (!state_) throw std::logic_error("SolveTicket: empty ticket");
    return *state_;
  }

  std::shared_ptr<detail::RequestState<S>> state_;
};

}  // namespace polyeval::service
