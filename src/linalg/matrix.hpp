#pragma once

/// \file matrix.hpp
/// Minimal dense complex matrices over any supported scalar, sized for
/// the Jacobians of Newton's method (tens of rows).

#include <span>
#include <stdexcept>
#include <vector>

#include "cplx/complex.hpp"

namespace polyeval::linalg {

template <prec::RealScalar T>
class Matrix {
  using C = cplx::Complex<T>;

 public:
  Matrix() = default;
  Matrix(unsigned rows, unsigned cols) : rows_(rows), cols_(cols), data_(std::size_t{rows} * cols) {}

  /// Wrap row-major data (e.g. an EvalResult Jacobian).
  static Matrix from_row_major(unsigned rows, unsigned cols, std::span<const C> data) {
    Matrix m(rows, cols);
    if (data.size() != m.data_.size())
      throw std::invalid_argument("Matrix: data size mismatch");
    std::copy(data.begin(), data.end(), m.data_.begin());
    return m;
  }

  [[nodiscard]] unsigned rows() const noexcept { return rows_; }
  [[nodiscard]] unsigned cols() const noexcept { return cols_; }

  [[nodiscard]] C& operator()(unsigned r, unsigned c) noexcept {
    return data_[std::size_t{r} * cols_ + c];
  }
  [[nodiscard]] const C& operator()(unsigned r, unsigned c) const noexcept {
    return data_[std::size_t{r} * cols_ + c];
  }

  [[nodiscard]] std::span<const C> data() const noexcept { return data_; }

  /// y = A x.
  [[nodiscard]] std::vector<C> multiply(std::span<const C> x) const {
    if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size mismatch");
    std::vector<C> y(rows_);
    for (unsigned r = 0; r < rows_; ++r) {
      C sum{};
      for (unsigned c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[c];
      y[r] = sum;
    }
    return y;
  }

 private:
  unsigned rows_ = 0, cols_ = 0;
  std::vector<C> data_;
};

/// Infinity norm of a complex vector, as the scalar type.
template <prec::RealScalar T>
[[nodiscard]] T max_norm(std::span<const cplx::Complex<T>> v) noexcept {
  T worst(0.0);
  for (const auto& z : v) {
    const T m = cplx::norm1(z);
    if (m > worst) worst = m;
  }
  return worst;
}

/// Infinity norm as a hardware double (for step control / reporting).
template <prec::RealScalar T>
[[nodiscard]] double max_norm_d(std::span<const cplx::Complex<T>> v) noexcept {
  return prec::ScalarTraits<T>::to_double(max_norm(v));
}

}  // namespace polyeval::linalg
