#pragma once

/// \file lu.hpp
/// LU decomposition with partial pivoting over complex multiprecision
/// scalars -- the linear-algebra stage of Newton's method (which the
/// paper observes is dominated by evaluation cost for large systems).

#include <optional>

#include "linalg/matrix.hpp"

namespace polyeval::linalg {

namespace detail {

/// The in-place partial-pivot elimination (P A = L U, pivoting on the
/// 1-norm of candidates) over row-major storage -- the ONE copy of the
/// factor loop, shared by LuFactorization and LuArena so their
/// arithmetic cannot drift (the arena's bitwise-equality contract is
/// true by construction).  `a` holds n*n entries, `perm` n entries;
/// returns false when a pivot column is exactly zero.
template <prec::RealScalar T>
[[nodiscard]] bool factor_in_place(cplx::Complex<T>* a, unsigned* perm, unsigned n) {
  using C = cplx::Complex<T>;
  const auto at = [a, n](unsigned r, unsigned c) -> C& {
    return a[std::size_t{r} * n + c];
  };
  for (unsigned i = 0; i < n; ++i) perm[i] = i;

  for (unsigned col = 0; col < n; ++col) {
    // pivot search
    unsigned pivot = col;
    T best = cplx::norm1(at(col, col));
    for (unsigned r = col + 1; r < n; ++r) {
      const T cand = cplx::norm1(at(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (!(best > T(0.0))) return false;
    if (pivot != col) {
      for (unsigned c = 0; c < n; ++c) std::swap(at(col, c), at(pivot, c));
      std::swap(perm[col], perm[pivot]);
    }
    // elimination
    const C inv_pivot = C(T(1.0)) / at(col, col);
    for (unsigned r = col + 1; r < n; ++r) {
      const C factor = at(r, col) * inv_pivot;
      at(r, col) = factor;
      for (unsigned c = col + 1; c < n; ++c) at(r, c) -= factor * at(col, c);
    }
  }
  return true;
}

/// Forward + back substitution on the permuted right-hand side, the
/// matching one-copy solve over a factor_in_place result.
template <prec::RealScalar T>
void solve_in_place(const cplx::Complex<T>* lu, const unsigned* perm, unsigned n,
                    std::span<const cplx::Complex<T>> b,
                    std::span<cplx::Complex<T>> x) {
  using C = cplx::Complex<T>;
  const auto at = [lu, n](unsigned r, unsigned c) -> const C& {
    return lu[std::size_t{r} * n + c];
  };
  for (unsigned r = 0; r < n; ++r) {
    C sum = b[perm[r]];
    for (unsigned c = 0; c < r; ++c) sum -= at(r, c) * x[c];
    x[r] = sum;
  }
  for (unsigned ri = n; ri-- > 0;) {
    C sum = x[ri];
    for (unsigned c = ri + 1; c < n; ++c) sum -= at(ri, c) * x[c];
    x[ri] = sum / at(ri, ri);
  }
}

}  // namespace detail

/// In-place LU factorization P A = L U with partial pivoting on the
/// 1-norm of candidate pivots (no square roots needed).
template <prec::RealScalar T>
class LuFactorization {
  using C = cplx::Complex<T>;

 public:
  /// Factor a square matrix; returns nullopt if a pivot column is
  /// exactly zero (singular to working precision).
  static std::optional<LuFactorization> factor(Matrix<T> a) {
    const unsigned n = a.rows();
    if (n != a.cols()) throw std::invalid_argument("LU: matrix must be square");
    std::vector<unsigned> perm(n);
    if (n > 0 && !detail::factor_in_place(&a(0, 0), perm.data(), n))
      return std::nullopt;
    return LuFactorization(std::move(a), std::move(perm));
  }

  /// Solve A x = b.
  [[nodiscard]] std::vector<C> solve(std::span<const C> b) const {
    const unsigned n = lu_.rows();
    if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
    std::vector<C> x(n);
    detail::solve_in_place(lu_.data().data(), perm_.data(), n, b, std::span<C>(x));
    return x;
  }

 private:
  LuFactorization(Matrix<T> lu, std::vector<unsigned> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}

  Matrix<T> lu_;
  std::vector<unsigned> perm_;
};

/// One-shot solve of A x = b; nullopt when singular.
template <prec::RealScalar T>
[[nodiscard]] std::optional<std::vector<cplx::Complex<T>>> lu_solve(
    Matrix<T> a, std::span<const cplx::Complex<T>> b) {
  auto f = LuFactorization<T>::factor(std::move(a));
  if (!f) return std::nullopt;
  return f->solve(b);
}

/// Pre-allocated factorization slots for batched solves: one n x n LU
/// workspace and permutation per slot, sized once, so the batched
/// trackers' predictor and corrector linear systems run allocation-free
/// in steady state.  Factor and solve run the SAME
/// detail::factor_in_place / solve_in_place loops as LuFactorization,
/// so results are BITWISE identical to lu_solve by construction -- the
/// linear-algebra half of the lockstep tracker's parity contract.
template <prec::RealScalar T>
class LuArena {
  using C = cplx::Complex<T>;

 public:
  LuArena() = default;
  LuArena(unsigned n, std::size_t slots) { resize(n, slots); }

  /// (Re)size the arena; the only allocating member.
  void resize(unsigned n, std::size_t slots) {
    n_ = n;
    slots_ = slots;
    lu_.resize(slots * std::size_t{n} * n);
    perm_.resize(slots * std::size_t{n});
  }

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }

  /// Factor the row-major matrix `a` into slot `s` and solve a x = b
  /// into `x`.  Returns false -- leaving `x` untouched -- when a pivot
  /// column is exactly zero, matching LuFactorization::factor.
  [[nodiscard]] bool solve(std::size_t s, std::span<const C> a, std::span<const C> b,
                           std::span<C> x) {
    const unsigned n = n_;
    if (s >= slots_ || a.size() != std::size_t{n} * n || b.size() != n || x.size() < n)
      throw std::invalid_argument("LuArena::solve: bad slot or size");
    C* lu = lu_.data() + s * std::size_t{n} * n;
    unsigned* perm = perm_.data() + s * std::size_t{n};
    std::copy(a.begin(), a.end(), lu);
    if (!detail::factor_in_place(lu, perm, n)) return false;
    detail::solve_in_place<T>(lu, perm, n, b, x.subspan(0, n));
    return true;
  }

 private:
  unsigned n_ = 0;
  std::size_t slots_ = 0;
  std::vector<C> lu_;           ///< slots * n * n factor storage
  std::vector<unsigned> perm_;  ///< slots * n pivot permutations
};

/// Batched factor+solve front: system i (row-major a[i*n*n ..], right-hand
/// side b[i*n ..]) runs through arena slot i, solutions land in
/// x[i*n ..] and singular[i] records the per-system lu_solve nullopt.
/// Each system's arithmetic is independent and identical to lu_solve's,
/// so batching changes nothing bitwise.
template <prec::RealScalar T>
void lu_solve_batch(LuArena<T>& arena, std::size_t count,
                    std::span<const cplx::Complex<T>> a,
                    std::span<const cplx::Complex<T>> b, std::span<cplx::Complex<T>> x,
                    std::span<unsigned char> singular) {
  const unsigned n = arena.dimension();
  const std::size_t nn = std::size_t{n} * n;
  if (a.size() < count * nn || b.size() < count * n || x.size() < count * n ||
      singular.size() < count)
    throw std::invalid_argument("lu_solve_batch: bad span sizes");
  for (std::size_t i = 0; i < count; ++i)
    singular[i] = arena.solve(i, a.subspan(i * nn, nn), b.subspan(i * n, n),
                              x.subspan(i * n, n))
                      ? 0
                      : 1;
}

}  // namespace polyeval::linalg
