#pragma once

/// \file lu.hpp
/// LU decomposition with partial pivoting over complex multiprecision
/// scalars -- the linear-algebra stage of Newton's method (which the
/// paper observes is dominated by evaluation cost for large systems).

#include <optional>

#include "linalg/matrix.hpp"

namespace polyeval::linalg {

/// In-place LU factorization P A = L U with partial pivoting on the
/// 1-norm of candidate pivots (no square roots needed).
template <prec::RealScalar T>
class LuFactorization {
  using C = cplx::Complex<T>;

 public:
  /// Factor a square matrix; returns nullopt if a pivot column is
  /// exactly zero (singular to working precision).
  static std::optional<LuFactorization> factor(Matrix<T> a) {
    const unsigned n = a.rows();
    if (n != a.cols()) throw std::invalid_argument("LU: matrix must be square");
    std::vector<unsigned> perm(n);
    for (unsigned i = 0; i < n; ++i) perm[i] = i;

    for (unsigned col = 0; col < n; ++col) {
      // pivot search
      unsigned pivot = col;
      T best = cplx::norm1(a(col, col));
      for (unsigned r = col + 1; r < n; ++r) {
        const T cand = cplx::norm1(a(r, col));
        if (cand > best) {
          best = cand;
          pivot = r;
        }
      }
      if (!(best > T(0.0))) return std::nullopt;
      if (pivot != col) {
        for (unsigned c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
        std::swap(perm[col], perm[pivot]);
      }
      // elimination
      const C inv_pivot = C(T(1.0)) / a(col, col);
      for (unsigned r = col + 1; r < n; ++r) {
        const C factor = a(r, col) * inv_pivot;
        a(r, col) = factor;
        for (unsigned c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      }
    }
    return LuFactorization(std::move(a), std::move(perm));
  }

  /// Solve A x = b.
  [[nodiscard]] std::vector<C> solve(std::span<const C> b) const {
    const unsigned n = lu_.rows();
    if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
    std::vector<C> x(n);
    // forward substitution on the permuted right-hand side
    for (unsigned r = 0; r < n; ++r) {
      C sum = b[perm_[r]];
      for (unsigned c = 0; c < r; ++c) sum -= lu_(r, c) * x[c];
      x[r] = sum;
    }
    // back substitution
    for (unsigned ri = n; ri-- > 0;) {
      C sum = x[ri];
      for (unsigned c = ri + 1; c < n; ++c) sum -= lu_(ri, c) * x[c];
      x[ri] = sum / lu_(ri, ri);
    }
    return x;
  }

 private:
  LuFactorization(Matrix<T> lu, std::vector<unsigned> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}

  Matrix<T> lu_;
  std::vector<unsigned> perm_;
};

/// One-shot solve of A x = b; nullopt when singular.
template <prec::RealScalar T>
[[nodiscard]] std::optional<std::vector<cplx::Complex<T>>> lu_solve(
    Matrix<T> a, std::span<const cplx::Complex<T>> b) {
  auto f = LuFactorization<T>::factor(std::move(a));
  if (!f) return std::nullopt;
  return f->solve(b);
}

}  // namespace polyeval::linalg
