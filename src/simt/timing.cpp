#include "simt/timing.hpp"

#include <algorithm>

namespace polyeval::simt {

// Calibration notes
// -----------------
// * launch_overhead_us = 40: CUDA 4.0 kernel launch + cudaDeviceSynchronize
//   round trips were 20-60 us on Fermi/PCIe-gen2 systems.  Three kernels
//   per evaluation yield the ~120 us floor that makes the paper's GPU
//   column almost flat in the monomial count.
// * issue_cycles_cmul = 16: a complex double multiplication is 4 DP
//   multiplies + 2 DP adds; Fermi issues DP at half rate (one warp DP
//   instruction per 2 cycles), giving 12 cycles, plus shared-memory and
//   address instructions.
// * latency_cycles = 400: Fermi global-memory latency 400-800 cycles,
//   arithmetic pipeline ~22; one resident warp sees the full latency,
//   w resident warps hide it proportionally (the paper: "several warps
//   would work on each multiprocessor simultaneously to hide long
//   latency operations").
// * CPU 30 ns per complex multiplication: ~100 cycles at 3.47 GHz for
//   4 mul + 2 add + 8 loads/stores of non-vectorized 2012 scalar code on
//   cache-resident data, consistent with the paper's measured 1.58 us per
//   monomial (49 multiplications) in Table 1.

double estimate_kernel_compute_us(const KernelStats& k, const DeviceSpec& spec,
                                  const GpuCostModel& model) {
  // Serialization depth: total warp work lands on the busiest SM.
  const double busiest = static_cast<double>(std::max<std::uint64_t>(k.warps_on_busiest_sm, 1));
  // Latency hiding: warps actually resident on that SM.
  const double resident_cap =
      static_cast<double>(k.concurrent_blocks_per_sm) * k.warps_per_block;
  const double hiding = std::max(1.0, std::min(busiest, resident_cap));

  const double cycles_mul =
      model.issue_cycles_cmul * model.scalar_cost_factor + model.latency_cycles / hiding;
  const double cycles_add =
      model.issue_cycles_cadd * model.scalar_cost_factor + model.latency_cycles / hiding;

  const double sm_cycles =
      busiest * (static_cast<double>(k.complex_mul_per_thread_max) * cycles_mul +
                 static_cast<double>(k.complex_add_per_thread_max) * cycles_add);

  // Device-wide DRAM traffic at effective bandwidth.
  const double traffic_bytes = static_cast<double>(
      (k.global_load_transactions + k.global_store_transactions) *
      spec.global_transaction_bytes);
  const double mem_cycles = traffic_bytes / model.global_bytes_per_cycle;

  // Bank-conflict serialization beyond the conflict-free baseline,
  // spread over the SMs.
  const double conflict_cycles =
      static_cast<double>(k.bank_conflict_cycles()) / spec.multiprocessors;

  return (std::max(sm_cycles, mem_cycles) + conflict_cycles) / spec.core_clock_mhz;
}

double estimate_kernel_us(const KernelStats& k, const DeviceSpec& spec,
                          const GpuCostModel& model) {
  return model.launch_overhead_us + estimate_kernel_compute_us(k, spec, model);
}

double estimate_copy_us(std::uint64_t bytes, const GpuCostModel& model) {
  return model.transfer_latency_us + static_cast<double>(bytes) / model.pcie_bytes_per_us;
}

double estimate_transfer_us(const TransferStats& t, const GpuCostModel& model) {
  const double calls = static_cast<double>(t.transfers_to_device + t.transfers_from_device);
  const double bytes = static_cast<double>(t.bytes_to_device + t.bytes_from_device);
  return calls * model.transfer_latency_us + bytes / model.pcie_bytes_per_us;
}

double estimate_h2d_us(const TransferStats& t, const GpuCostModel& model) {
  return static_cast<double>(t.transfers_to_device) * model.transfer_latency_us +
         static_cast<double>(t.bytes_to_device) / model.pcie_bytes_per_us;
}

double estimate_d2h_us(const TransferStats& t, const GpuCostModel& model) {
  return static_cast<double>(t.transfers_from_device) * model.transfer_latency_us +
         static_cast<double>(t.bytes_from_device) / model.pcie_bytes_per_us;
}

double estimate_log_us(const LaunchLog& log, const DeviceSpec& spec,
                       const GpuCostModel& model) {
  double us = estimate_transfer_us(log.transfers, model);
  for (const auto& k : log.kernels) us += estimate_kernel_us(k, spec, model);
  return us;
}

double scalar_cost_factor_for_width(unsigned width) noexcept {
  switch (width) {
    case 0:
    case 1: return 1.0;   // hardware double
    case 2: return 8.0;   // double-double (ScalarTraits<DoubleDouble>)
    case 4: return 60.0;  // quad-double (ScalarTraits<QuadDouble>)
    default: return 15.0 * width;  // quad-double's per-double rate
  }
}

double estimate_cpu_us(std::uint64_t complex_mul, std::uint64_t complex_add,
                       const CpuCostModel& model) {
  return (static_cast<double>(complex_mul) * model.ns_per_cmul +
          static_cast<double>(complex_add) * model.ns_per_cadd) *
         model.scalar_cost_factor / 1000.0;
}

}  // namespace polyeval::simt
