#pragma once

/// \file timing.hpp
/// Analytic timing model mapping simulator statistics to wall-clock
/// estimates for the paper's hardware (Tesla C2050 + one Xeon X5690
/// core).  The absolute constants are calibrated from Fermi-era
/// microbenchmark figures (see timing.cpp); the *shape* of the tables --
/// near-flat GPU times, linear CPU times, speedups growing with the
/// monomial count and with k -- emerges from the structure of the model,
/// not from per-row fitting.

#include <cstdint>
#include <span>

#include "simt/device_spec.hpp"
#include "simt/stats.hpp"

namespace polyeval::simt {

/// Cost constants for the device.  All "cycles" are SM issue cycles at
/// the shader clock.
struct GpuCostModel {
  /// Driver + runtime cost of one kernel launch with synchronization,
  /// Fermi era (tens of microseconds).
  double launch_overhead_us = 40.0;
  /// Fixed cost of one cudaMemcpy call.
  double transfer_latency_us = 8.0;
  /// Effective PCIe gen2 x16 payload rate (bytes per microsecond).
  double pcie_bytes_per_us = 5500.0;
  /// Issue cycles per complex multiplication per warp (4 DP mul + 2 DP
  /// add at half-rate DP issue, plus address arithmetic).
  double issue_cycles_cmul = 16.0;
  /// Issue cycles per complex addition per warp.
  double issue_cycles_cadd = 8.0;
  /// Average exposed memory/pipeline latency per arithmetic step; divided
  /// by the number of warps available to hide it.
  double latency_cycles = 400.0;
  /// Effective global-memory bandwidth (bytes per SM clock cycle);
  /// 144 GB/s peak, ~70% achievable.
  double global_bytes_per_cycle = 88.0;
  /// Software-arithmetic multiplier (1 double, ~8 double-double, ~60
  /// quad-double); scales issue cycles, not latency.
  double scalar_cost_factor = 1.0;
};

/// Cost constants for the sequential baseline.
struct CpuCostModel {
  /// Nanoseconds per complex multiplication of 2012-era scalar x87/SSE
  /// code including loads/stores (calibrated against the paper's CPU
  /// column; see timing.cpp).
  double ns_per_cmul = 30.0;
  /// Nanoseconds per complex addition.
  double ns_per_cadd = 10.0;
  /// Software-arithmetic multiplier, as above.
  double scalar_cost_factor = 1.0;
};

/// Estimated execution time of one kernel launch, excluding the fixed
/// launch overhead (microseconds).
[[nodiscard]] double estimate_kernel_compute_us(const KernelStats& k,
                                                const DeviceSpec& spec,
                                                const GpuCostModel& model);

/// Estimated time of one kernel launch including launch overhead.
[[nodiscard]] double estimate_kernel_us(const KernelStats& k, const DeviceSpec& spec,
                                        const GpuCostModel& model);

/// Estimated host<->device transfer time (microseconds).
[[nodiscard]] double estimate_transfer_us(const TransferStats& t,
                                          const GpuCostModel& model);

/// Estimated time of ONE host<->device copy of `bytes` payload
/// (microseconds): the per-command duration the stream timeline
/// advances by.  estimate_transfer_us is the aggregate of these over a
/// whole log's transfer counters.
[[nodiscard]] double estimate_copy_us(std::uint64_t bytes, const GpuCostModel& model);

/// Per-direction splits of estimate_transfer_us -- the upload (h2d) and
/// download (d2h) DMA engine occupancy of a log, priced with the same
/// calls x latency + bytes / rate formula.  Invariant the trace
/// exporter relies on: estimate_h2d_us + estimate_d2h_us ==
/// estimate_transfer_us for the same TransferStats.
[[nodiscard]] double estimate_h2d_us(const TransferStats& t,
                                     const GpuCostModel& model);
[[nodiscard]] double estimate_d2h_us(const TransferStats& t,
                                     const GpuCostModel& model);

/// Estimated time for a whole launch log (one instrumented region, e.g.
/// one evaluation): kernels plus transfers.
[[nodiscard]] double estimate_log_us(const LaunchLog& log, const DeviceSpec& spec,
                                     const GpuCostModel& model);

/// Estimated single-core CPU time for the given operation tallies
/// (microseconds).
[[nodiscard]] double estimate_cpu_us(std::uint64_t complex_mul, std::uint64_t complex_add,
                                     const CpuCostModel& model);

/// GpuCostModel::scalar_cost_factor for a software scalar of `width`
/// hardware doubles: 1 -> 1 (double), 2 -> 8 (double-double), 4 -> 60
/// (quad-double) -- the prec::ScalarTraits cost_factor constants made
/// reachable from non-template code (the autotuner prices a probe from
/// a TuneKey's scalar_width field, where no scalar type is in scope).
/// Unknown widths scale linearly from quad-double's per-double rate.
[[nodiscard]] double scalar_cost_factor_for_width(unsigned width) noexcept;

}  // namespace polyeval::simt
