#include "simt/kernel.hpp"

#include <algorithm>
#include <mutex>

#include "simt/thread_pool.hpp"

namespace polyeval::simt {

namespace detail {

bool SharedRaceJournal::record(std::uint32_t word, unsigned thread, bool is_write) {
  auto [it, inserted] = words.try_emplace(word, WordState{thread, is_write, false});
  if (inserted) return false;
  auto& state = it->second;
  if (state.thread != thread) {
    state.multi_thread = true;
    const bool hazard = is_write || state.written;
    state.written = state.written || is_write;
    return hazard;
  }
  // same thread touching a word other threads already read: hazardous
  // only if this is a write and someone else was involved
  const bool hazard = is_write && state.multi_thread;
  state.written = state.written || is_write;
  return hazard;
}

bool GlobalRaceJournal::record_write(std::uint64_t address, std::uint64_t global_thread) {
  const std::lock_guard lock(mutex);
  auto [it, inserted] = writers.try_emplace(address, global_thread);
  return !inserted && it->second != global_thread;
}

void WarpCollector::record_global(bool is_store, std::size_t ordinal,
                                  std::uint64_t address, std::size_t bytes,
                                  unsigned segment_bytes) {
  auto& groups = is_store ? stores : loads;
  if (groups.size() <= ordinal) groups.resize(ordinal + 1);
  auto& segs = groups[ordinal].segments;
  const std::uint64_t first = address / segment_bytes;
  const std::uint64_t last = (address + bytes - 1) / segment_bytes;
  for (std::uint64_t s = first; s <= last; ++s) {
    if (std::find(segs.begin(), segs.end(), s) == segs.end()) segs.push_back(s);
  }
}

void WarpCollector::record_shared(std::size_t ordinal, std::uint32_t first_word,
                                  std::size_t words) {
  if (shared.size() <= ordinal) shared.resize(ordinal + 1);
  auto& w = shared[ordinal].words;
  for (std::size_t i = 0; i < words; ++i) w.push_back(first_word + static_cast<std::uint32_t>(i));
}

void BlockAccum::fold(const WarpCollector& col, const DeviceSpec& spec) {
  for (const auto& g : col.loads) {
    ++load_requests;
    load_transactions += g.segments.size();
  }
  for (const auto& g : col.stores) {
    ++store_requests;
    store_transactions += g.segments.size();
  }
  for (const auto& g : col.shared) {
    ++shared_requests;
    // Fermi rule: lanes reading the *same* word broadcast; distinct words
    // mapping to the same bank serialize.  Cost = max distinct words per
    // bank.
    std::vector<std::uint32_t> distinct(g.words);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
    std::vector<std::uint32_t> per_bank(spec.shared_banks, 0);
    std::uint32_t worst = 1;
    for (const auto word : distinct) {
      const auto bank = word % spec.shared_banks;
      worst = std::max(worst, ++per_bank[bank]);
    }
    shared_cycles += worst;
  }
}

}  // namespace detail

/// Runs the blocks of one launch; also the ThreadContext befriender.
struct BlockRunner {
  const Kernel& kernel;
  const LaunchConfig& cfg;
  const DeviceSpec& spec;

  detail::BlockAccum totals;
  std::mutex merge_mutex;
  detail::GlobalRaceJournal global_races;

  void run_block(unsigned block_index) {
    SharedSpace shared(cfg.shared_bytes);
    detail::BlockAccum accum;
    detail::SharedRaceJournal shared_races;
    std::vector<std::uint64_t> cmul_per_thread(cfg.block_threads, 0);
    std::vector<std::uint64_t> cadd_per_thread(cfg.block_threads, 0);

    for (const auto& phase : kernel.phases) {
      shared_races.clear();  // phases are barriers: accesses across them order
      for (unsigned warp_start = 0; warp_start < cfg.block_threads;
           warp_start += spec.warp_size) {
        detail::WarpCollector collector;
        const unsigned warp_end =
            std::min(warp_start + spec.warp_size, cfg.block_threads);
        for (unsigned t = warp_start; t < warp_end; ++t) {
          ThreadContext ctx(block_index, t, cfg, spec, shared, collector,
                            cfg.detect_races ? &shared_races : nullptr,
                            cfg.detect_races ? &global_races : nullptr);
          phase(ctx);
          cmul_per_thread[t] += ctx.cmul_;
          cadd_per_thread[t] += ctx.cadd_;
          accum.cmul += ctx.cmul_;
          accum.cadd += ctx.cadd_;
          accum.constant_reads += ctx.const_reads_;
          accum.inactive_lane_phases += ctx.inactive_;
          accum.load_bytes += ctx.load_bytes_;
          accum.store_bytes += ctx.store_bytes_;
          accum.race_hazards += ctx.race_hazards_;
        }
        accum.fold(collector, spec);
      }
    }
    for (unsigned t = 0; t < cfg.block_threads; ++t) {
      accum.cmul_thread_max = std::max(accum.cmul_thread_max, cmul_per_thread[t]);
      accum.cadd_thread_max = std::max(accum.cadd_thread_max, cadd_per_thread[t]);
    }

    const std::lock_guard lock(merge_mutex);
    totals.cmul += accum.cmul;
    totals.cadd += accum.cadd;
    totals.cmul_thread_max = std::max(totals.cmul_thread_max, accum.cmul_thread_max);
    totals.cadd_thread_max = std::max(totals.cadd_thread_max, accum.cadd_thread_max);
    totals.load_requests += accum.load_requests;
    totals.load_transactions += accum.load_transactions;
    totals.load_bytes += accum.load_bytes;
    totals.store_requests += accum.store_requests;
    totals.store_transactions += accum.store_transactions;
    totals.store_bytes += accum.store_bytes;
    totals.shared_requests += accum.shared_requests;
    totals.shared_cycles += accum.shared_cycles;
    totals.constant_reads += accum.constant_reads;
    totals.inactive_lane_phases += accum.inactive_lane_phases;
    totals.race_hazards += accum.race_hazards;
  }
};

KernelStats run_kernel(const Kernel& kernel, const LaunchConfig& cfg,
                       const DeviceSpec& spec, ThreadPool& pool) {
  if (cfg.grid_blocks == 0) throw LaunchError(kernel.name + ": empty grid");
  if (cfg.block_threads == 0 || cfg.block_threads > spec.max_threads_per_block)
    throw LaunchError(kernel.name + ": invalid block size " +
                      std::to_string(cfg.block_threads));
  if (cfg.shared_bytes > spec.shared_memory_per_block)
    throw LaunchError(kernel.name + ": block requests " +
                      std::to_string(cfg.shared_bytes) + " bytes of shared memory, " +
                      std::to_string(spec.shared_memory_per_block) + " available");

  BlockRunner runner{kernel, cfg, spec, {}, {}, {}};
  pool.parallel_for(cfg.grid_blocks,
                    [&](std::size_t b) { runner.run_block(static_cast<unsigned>(b)); });

  if (cfg.detect_races && runner.totals.race_hazards > 0)
    throw LaunchError(kernel.name + ": " +
                      std::to_string(runner.totals.race_hazards) +
                      " race hazard(s): unordered same-phase accesses to a "
                      "shared word or double-writes to a global address");

  const auto& t = runner.totals;
  KernelStats stats;
  stats.kernel = kernel.name;
  stats.blocks = cfg.grid_blocks;
  stats.threads = static_cast<std::uint64_t>(cfg.grid_blocks) * cfg.block_threads;
  stats.warps_per_block = (cfg.block_threads + spec.warp_size - 1) / spec.warp_size;
  stats.warps = static_cast<std::uint64_t>(stats.warps_per_block) * cfg.grid_blocks;

  stats.complex_mul_total = t.cmul;
  stats.complex_add_total = t.cadd;
  stats.complex_mul_per_thread_max = t.cmul_thread_max;
  stats.complex_add_per_thread_max = t.cadd_thread_max;
  stats.global_load_requests = t.load_requests;
  stats.global_load_transactions = t.load_transactions;
  stats.global_store_requests = t.store_requests;
  stats.global_store_transactions = t.store_transactions;
  stats.global_bytes_loaded = t.load_bytes;
  stats.global_bytes_stored = t.store_bytes;
  stats.shared_requests = t.shared_requests;
  stats.shared_cycles = t.shared_cycles;
  stats.constant_reads = t.constant_reads;
  stats.inactive_lane_phases = t.inactive_lane_phases;
  stats.race_hazards = t.race_hazards;
  stats.shared_bytes_per_block = cfg.shared_bytes;

  // Occupancy: how many blocks fit on one SM at once (Fermi limits).
  unsigned resident = spec.max_blocks_per_sm;
  resident = std::min(resident, std::max(1u, spec.max_threads_per_sm / cfg.block_threads));
  if (cfg.shared_bytes > 0)
    resident = std::min(
        resident, std::max(1u, static_cast<unsigned>(spec.shared_memory_per_block /
                                                     cfg.shared_bytes)));
  stats.concurrent_blocks_per_sm = resident;
  const std::uint64_t per_wave =
      static_cast<std::uint64_t>(spec.multiprocessors) * resident;
  stats.waves =
      static_cast<unsigned>((cfg.grid_blocks + per_wave - 1) / per_wave);
  stats.warps_on_busiest_sm =
      static_cast<std::uint64_t>(stats.warps_per_block) *
      ((cfg.grid_blocks + spec.multiprocessors - 1) / spec.multiprocessors);
  return stats;
}

}  // namespace polyeval::simt
