#include "simt/kernel.hpp"

#include <algorithm>
#include <bit>

#include "simt/thread_pool.hpp"

namespace polyeval::simt {

namespace detail {

bool SharedRaceJournal::record(std::uint32_t word, unsigned thread, bool is_write,
                               unsigned* other_thread) {
  auto& state = words[word];
  if (state.epoch != epoch) {
    state.epoch = epoch;
    state.thread = thread;
    state.other = thread;
    state.written = is_write;
    state.multi_thread = false;
    return false;
  }
  if (state.thread != thread) {
    state.multi_thread = true;
    state.other = thread;
    const bool hazard = is_write || state.written;
    state.written = state.written || is_write;
    if (hazard && other_thread != nullptr) *other_thread = state.thread;
    return hazard;
  }
  // same thread touching a word other threads already read: hazardous
  // only if this is a write and someone else was involved
  const bool hazard = is_write && state.multi_thread;
  state.written = state.written || is_write;
  if (hazard && other_thread != nullptr) *other_thread = state.other;
  return hazard;
}

void GlobalRaceJournal::Shard::begin_launch() {
  const std::lock_guard lock(mutex);
  ++epoch;
  filled = 0;
  if (slots.empty()) slots.resize(256);
}

void GlobalRaceJournal::Shard::grow() {
  std::vector<Slot> old;
  old.swap(slots);
  slots.resize(old.size() * 2);
  for (const auto& slot : old) {
    if (slot.epoch != epoch) continue;
    std::size_t i = probe_start(slot.address);
    while (slots[i].epoch == epoch) i = (i + 1) & (slots.size() - 1);
    slots[i] = slot;
  }
}

bool GlobalRaceJournal::Shard::record_write(std::uint64_t address,
                                            std::uint64_t global_thread,
                                            std::uint64_t* other_thread) {
  const std::lock_guard lock(mutex);
  // Keep the load factor below 1/2 so probes stay short.
  if ((filled + 1) * 2 > slots.size()) grow();
  std::size_t i = probe_start(address);
  for (;;) {
    Slot& slot = slots[i];
    if (slot.epoch != epoch) {
      slot.epoch = epoch;
      slot.address = address;
      slot.thread = global_thread;
      ++filled;
      return false;
    }
    if (slot.address == address) {
      if (slot.thread == global_thread) return false;
      if (other_thread != nullptr) *other_thread = slot.thread;
      return true;
    }
    i = (i + 1) & (slots.size() - 1);
  }
}

void WarpCollector::warm(const Shape& shape) {
  if (loads.size() < shape.loads) loads.resize(shape.loads);
  if (stores.size() < shape.stores) stores.resize(shape.stores);
  if (shared.size() < shape.shared) shared.resize(shape.shared);
  // A warp group holds at most one entry per lane (runs) or two segments
  // per lane (a 128-byte-straddling access); reserving those bounds once
  // keeps the incremental push_back growth off the steady-state path.
  for (auto& g : loads)
    if (g.segments.capacity() < 64) g.segments.reserve(64);
  for (auto& g : stores)
    if (g.segments.capacity() < 64) g.segments.reserve(64);
  for (auto& g : shared)
    if (g.runs.capacity() < 32) g.runs.reserve(32);
}

void WarpCollector::reset() {
  for (std::size_t i = 0; i < loads_used; ++i) loads[i].segments.clear();
  for (std::size_t i = 0; i < stores_used; ++i) stores[i].segments.clear();
  for (std::size_t i = 0; i < shared_used; ++i) shared[i].runs.clear();
  loads_used = stores_used = shared_used = 0;
}

void WarpCollector::record_global(bool is_store, std::size_t ordinal,
                                  std::uint64_t address, std::size_t bytes,
                                  unsigned segment_bytes) {
  auto& groups = is_store ? stores : loads;
  auto& used = is_store ? stores_used : loads_used;
  if (groups.size() <= ordinal) groups.resize(ordinal + 1);
  used = std::max(used, ordinal + 1);
  auto& segs = groups[ordinal].segments;
  // Segment sizes are powers of two on every real device; a shift keeps
  // this per-access path off the integer divider.
  std::uint64_t first, last;
  if (std::has_single_bit(segment_bytes)) {
    const unsigned shift = static_cast<unsigned>(std::countr_zero(segment_bytes));
    first = address >> shift;
    last = (address + bytes - 1) >> shift;
  } else {
    first = address / segment_bytes;
    last = (address + bytes - 1) / segment_bytes;
  }
  for (std::uint64_t s = first; s <= last; ++s) {
    if (std::find(segs.begin(), segs.end(), s) == segs.end()) segs.push_back(s);
  }
}

void WarpCollector::record_shared(std::size_t ordinal, std::uint32_t first_word,
                                  std::size_t words) {
  if (shared.size() <= ordinal) shared.resize(ordinal + 1);
  shared_used = std::max(shared_used, ordinal + 1);
  shared[ordinal].runs.push_back({first_word, static_cast<std::uint32_t>(words)});
}

}  // namespace detail

void BlockScratch::fold(const detail::WarpCollector& col, const DeviceSpec& spec,
                        detail::BlockAccum& accum) {
  for (std::size_t i = 0; i < col.loads_used; ++i) {
    ++accum.load_requests;
    accum.load_transactions += col.loads[i].segments.size();
  }
  for (std::size_t i = 0; i < col.stores_used; ++i) {
    ++accum.store_requests;
    accum.store_transactions += col.stores[i].segments.size();
  }
  // fold_bank_epoch/fold_per_bank were sized by BlockScratch::warm,
  // which run_kernel applies to every participant before any block runs.
  const bool banks_pow2 = (spec.shared_banks & (spec.shared_banks - 1)) == 0;
  const std::uint32_t bank_mask = spec.shared_banks - 1;
  for (std::size_t i = 0; i < col.shared_used; ++i) {
    const auto& g = col.shared[i];
    ++accum.shared_requests;
    // Fermi rule: lanes reading the *same* word broadcast; distinct words
    // mapping to the same bank serialize.  Cost = max distinct words per
    // bank.  Words are deduped against the epoch-stamped seen-table, so
    // a request costs O(words touched), not a sort; the per-bank counts
    // are epoch-stamped too, so nothing is cleared between requests.
    ++fold_epoch;
    std::uint32_t worst = 1;
    for (const auto& run : g.runs) {
      for (std::uint32_t w = run.first_word; w < run.first_word + run.words; ++w) {
        if (fold_seen[w] == fold_epoch) continue;  // broadcast: same word
        fold_seen[w] = fold_epoch;
        const std::uint32_t bank = banks_pow2 ? (w & bank_mask) : (w % spec.shared_banks);
        const std::uint32_t in_bank =
            fold_bank_epoch[bank] == fold_epoch ? ++fold_per_bank[bank]
                                                : (fold_per_bank[bank] = 1);
        fold_bank_epoch[bank] = fold_epoch;
        worst = std::max(worst, in_bank);
      }
    }
    accum.shared_cycles += worst;
  }
}

void BlockScratch::warm(const LaunchConfig& cfg, const DeviceSpec& spec,
                        const detail::WarpCollector::Shape& shape) {
  // Pre-size only: run_block resets (sizes AND zeroes) the arena before
  // every block, so warming a hot participant again would just repeat
  // that memset once per launch per participant.
  if (shared.size() < cfg.shared_bytes) shared.reset(cfg.shared_bytes);
  const std::size_t shared_words =
      cfg.shared_bytes / spec.shared_bank_width_bytes + 2;
  shared_races.prepare(shared_words);
  if (fold_seen.size() < shared_words) fold_seen.resize(shared_words);
  if (fold_bank_epoch.size() < spec.shared_banks) {
    fold_bank_epoch.resize(spec.shared_banks, 0);
    fold_per_bank.resize(spec.shared_banks, 0);
  }
  if (cmul_per_thread.size() < cfg.block_threads) {
    cmul_per_thread.resize(cfg.block_threads, 0);
    cadd_per_thread.resize(cfg.block_threads, 0);
  }
  collector.warm(shape);
}

/// Runs the blocks of one launch; also the ThreadContext befriender.
struct BlockRunner {
  const Kernel& kernel;
  const LaunchConfig& cfg;
  const DeviceSpec& spec;
  detail::GlobalRaceJournal* global_races;

  detail::BlockAccum totals;
  std::mutex merge_mutex;

  void run_block(unsigned block_index, BlockScratch& scratch,
                 detail::BlockAccum& accum) {
    scratch.shared.reset(cfg.shared_bytes);
    scratch.cmul_per_thread.assign(cfg.block_threads, 0);
    scratch.cadd_per_thread.assign(cfg.block_threads, 0);

    for (unsigned phase_index = 0; phase_index < kernel.phases.size(); ++phase_index) {
      const auto& phase = kernel.phases[phase_index];
      scratch.shared_races.clear();  // phases are barriers: accesses across them order
      for (unsigned warp_start = 0; warp_start < cfg.block_threads;
           warp_start += spec.warp_size) {
        scratch.collector.reset();
        const unsigned warp_end =
            std::min(warp_start + spec.warp_size, cfg.block_threads);
        for (unsigned t = warp_start; t < warp_end; ++t) {
          ThreadContext ctx(block_index, t, phase_index, cfg, spec, scratch.shared,
                            scratch.collector,
                            cfg.detect_races ? &scratch.shared_races : nullptr,
                            cfg.detect_races ? global_races : nullptr,
                            cfg.detect_races ? &accum.first_hazard : nullptr);
          phase(ctx);
          scratch.cmul_per_thread[t] += ctx.cmul_;
          scratch.cadd_per_thread[t] += ctx.cadd_;
          accum.cmul += ctx.cmul_;
          accum.cadd += ctx.cadd_;
          accum.constant_reads += ctx.const_reads_;
          accum.inactive_lane_phases += ctx.inactive_;
          accum.load_bytes += ctx.load_bytes_;
          accum.store_bytes += ctx.store_bytes_;
          accum.race_hazards += ctx.race_hazards_;
        }
        scratch.fold(scratch.collector, spec, accum);
      }
    }
    for (unsigned t = 0; t < cfg.block_threads; ++t) {
      accum.cmul_thread_max = std::max(accum.cmul_thread_max, scratch.cmul_per_thread[t]);
      accum.cadd_thread_max = std::max(accum.cadd_thread_max, scratch.cadd_per_thread[t]);
    }
  }

  /// Run a contiguous range of blocks on one participant's scratch and
  /// merge the tallies once for the whole range.
  void run_range(BlockScratch& scratch, std::size_t begin, std::size_t end) {
    detail::BlockAccum accum;
    for (std::size_t b = begin; b < end; ++b)
      run_block(static_cast<unsigned>(b), scratch, accum);

    const std::lock_guard lock(merge_mutex);
    totals.cmul += accum.cmul;
    totals.cadd += accum.cadd;
    totals.cmul_thread_max = std::max(totals.cmul_thread_max, accum.cmul_thread_max);
    totals.cadd_thread_max = std::max(totals.cadd_thread_max, accum.cadd_thread_max);
    totals.load_requests += accum.load_requests;
    totals.load_transactions += accum.load_transactions;
    totals.load_bytes += accum.load_bytes;
    totals.store_requests += accum.store_requests;
    totals.store_transactions += accum.store_transactions;
    totals.store_bytes += accum.store_bytes;
    totals.shared_requests += accum.shared_requests;
    totals.shared_cycles += accum.shared_cycles;
    totals.constant_reads += accum.constant_reads;
    totals.inactive_lane_phases += accum.inactive_lane_phases;
    totals.race_hazards += accum.race_hazards;
    if (!totals.first_hazard.valid && accum.first_hazard.valid)
      totals.first_hazard = accum.first_hazard;
  }
};

KernelStats run_kernel(const Kernel& kernel, const LaunchConfig& cfg,
                       const DeviceSpec& spec, ThreadPool& pool,
                       EngineScratch& scratch) {
  if (cfg.grid_blocks == 0) throw LaunchError(kernel.name + ": empty grid");
  if (cfg.block_threads == 0 || cfg.block_threads > spec.max_threads_per_block)
    throw LaunchError(kernel.name + ": invalid block size " +
                      std::to_string(cfg.block_threads));
  if (cfg.shared_bytes > spec.shared_memory_per_block)
    throw LaunchError(kernel.name + ": block requests " +
                      std::to_string(cfg.shared_bytes) + " bytes of shared memory, " +
                      std::to_string(spec.shared_memory_per_block) + " available");

  scratch.prepare(pool.participant_count());
  // Pre-size every participant's scratch for this launch shape: a
  // participant that sat out earlier launches must not allocate when a
  // chunk lands on it later (the zero-alloc steady-state guarantee).
  for (auto& bs : scratch.per_participant)
    bs.warm(cfg, spec, scratch.observed_shape);
  // The journal is only consulted by checked launches; the production
  // path skips even its 16 per-shard epoch bumps.
  if (cfg.detect_races) scratch.global_races.begin_launch();
  BlockRunner runner{kernel, cfg, spec, &scratch.global_races, {}, {}};
  if (cfg.audit != nullptr) {
    // Audited launches run serially on the calling thread: the auditor
    // sees every access in deterministic program order (blocks, then
    // phases, then warps, then lanes) and needs no locking.
    cfg.audit->begin_launch(kernel.name, cfg.grid_blocks, cfg.block_threads,
                            cfg.shared_bytes);
    runner.run_range(scratch.per_participant[0], 0, cfg.grid_blocks);
    cfg.audit->end_launch();
  } else {
    pool.parallel_for_ranges(
        cfg.grid_blocks, pool.default_chunk(cfg.grid_blocks),
        [&](unsigned participant, std::size_t begin, std::size_t end) {
          runner.run_range(scratch.per_participant[participant], begin, end);
        });
  }
  for (const auto& bs : scratch.per_participant)
    scratch.observed_shape.merge(bs.collector);

  if (cfg.detect_races && runner.totals.race_hazards > 0) {
    std::string msg = kernel.name + ": " +
                      std::to_string(runner.totals.race_hazards) +
                      " race hazard(s): unordered same-phase accesses to a "
                      "shared word or double-writes to a global address";
    const auto& h = runner.totals.first_hazard;
    if (h.valid) {
      // Shared hazards report block-local thread indices; global hazards
      // report launch-global thread indices.
      msg += "; first hazard: phase " + std::to_string(h.phase) +
             (h.shared ? ", block " + std::to_string(h.block) + ", shared word "
                       : ", global address ") +
             std::to_string(h.address) + ", threads " +
             std::to_string(h.thread_a) + " and " + std::to_string(h.thread_b);
    }
    throw LaunchError(msg);
  }

  const auto& t = runner.totals;
  KernelStats stats;
  stats.kernel = kernel.name;
  stats.blocks = cfg.grid_blocks;
  stats.threads = static_cast<std::uint64_t>(cfg.grid_blocks) * cfg.block_threads;
  stats.warps_per_block = (cfg.block_threads + spec.warp_size - 1) / spec.warp_size;
  stats.warps = static_cast<std::uint64_t>(stats.warps_per_block) * cfg.grid_blocks;

  stats.complex_mul_total = t.cmul;
  stats.complex_add_total = t.cadd;
  stats.complex_mul_per_thread_max = t.cmul_thread_max;
  stats.complex_add_per_thread_max = t.cadd_thread_max;
  stats.global_load_requests = t.load_requests;
  stats.global_load_transactions = t.load_transactions;
  stats.global_store_requests = t.store_requests;
  stats.global_store_transactions = t.store_transactions;
  stats.global_bytes_loaded = t.load_bytes;
  stats.global_bytes_stored = t.store_bytes;
  stats.shared_requests = t.shared_requests;
  stats.shared_cycles = t.shared_cycles;
  stats.constant_reads = t.constant_reads;
  stats.inactive_lane_phases = t.inactive_lane_phases;
  stats.race_hazards = t.race_hazards;
  stats.shared_bytes_per_block = cfg.shared_bytes;

  // Occupancy: how many blocks fit on one SM at once (Fermi limits).
  unsigned resident = spec.max_blocks_per_sm;
  resident = std::min(resident, std::max(1u, spec.max_threads_per_sm / cfg.block_threads));
  if (cfg.shared_bytes > 0)
    resident = std::min(
        resident, std::max(1u, static_cast<unsigned>(spec.shared_memory_per_block /
                                                     cfg.shared_bytes)));
  stats.concurrent_blocks_per_sm = resident;
  const std::uint64_t per_wave =
      static_cast<std::uint64_t>(spec.multiprocessors) * resident;
  stats.waves =
      static_cast<unsigned>((cfg.grid_blocks + per_wave - 1) / per_wave);
  stats.warps_on_busiest_sm =
      static_cast<std::uint64_t>(stats.warps_per_block) *
      ((cfg.grid_blocks + spec.multiprocessors - 1) / spec.multiprocessors);
  return stats;
}

KernelStats run_kernel(const Kernel& kernel, const LaunchConfig& cfg,
                       const DeviceSpec& spec, ThreadPool& pool) {
  EngineScratch scratch;
  return run_kernel(kernel, cfg, spec, pool, scratch);
}

}  // namespace polyeval::simt
