#pragma once

/// \file shared_memory.hpp
/// Per-block shared memory: a bounds-checked byte arena created for each
/// thread block at launch, carved into typed views by the kernels (the
/// Powers array of kernel one; the L_1..L_{k+1} locations of kernel two).

#include <cstddef>
#include <vector>

#include "simt/memory.hpp"

namespace polyeval::simt {

class SharedSpace {
 public:
  explicit SharedSpace(std::size_t bytes) : storage_(bytes) {}

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::byte* data() noexcept { return storage_.data(); }

  /// Re-arm the arena for the next block: size it to `bytes` and zero it,
  /// reusing the existing capacity (steady-state use never allocates).
  void reset(std::size_t bytes) { storage_.assign(bytes, std::byte{}); }

  /// Typed pointer at byte_offset covering count elements; throws
  /// LaunchError if the view exceeds the block's allocation (kernel bug).
  template <class T>
  [[nodiscard]] T* typed(std::size_t byte_offset, std::size_t count) {
    if (byte_offset % alignof(T) != 0)
      throw LaunchError("shared memory view misaligned");
    if (byte_offset + count * sizeof(T) > storage_.size())
      throw LaunchError("shared memory view out of bounds: offset " +
                        std::to_string(byte_offset) + " + " +
                        std::to_string(count * sizeof(T)) + " bytes > " +
                        std::to_string(storage_.size()));
    return reinterpret_cast<T*>(storage_.data() + byte_offset);
  }

 private:
  std::vector<std::byte> storage_;
};

}  // namespace polyeval::simt
