#pragma once

/// \file thread_pool.hpp
/// Host-side worker pool the simulator schedules thread blocks onto.
/// Work is handed out by an atomic counter, so block execution order is
/// nondeterministic across workers while the per-block results stay
/// deterministic (blocks never share mutable state except through
/// explicitly synchronized stats merging).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace polyeval::simt {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for i in [0, count), distributing indices over the
  /// workers; blocks until every index completed.  The calling thread
  /// participates.  Exceptions from fn are captured and the first one
  /// rethrown on the caller.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  static void drain(Job& job);

  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;  ///< shared so workers can outlive the wait
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace polyeval::simt
