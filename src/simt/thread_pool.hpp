#pragma once

/// \file thread_pool.hpp
/// Host-side worker pool the simulator schedules thread blocks onto.
///
/// Work is handed out as contiguous *chunks* of the index space through a
/// shared cursor, so a simulated grid of 10k blocks costs a few dozen
/// chunk claims instead of 10k type-erased per-index dispatches.  The
/// callable is a template parameter: inside a chunk every call is a
/// direct (inlinable) invocation; type erasure happens once per job via a
/// captureless function pointer, never through std::function.
///
/// Chunk execution order is nondeterministic across workers while the
/// per-index results stay deterministic (indices never share mutable
/// state except through explicitly synchronized merging).  One job runs
/// at a time; concurrent callers serialize on the submission lock.
/// parallel_for must not be called from inside one of its own callbacks.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace polyeval::simt {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for i in [0, count), distributing chunks of indices over
  /// the workers; blocks until every index completed.  The calling thread
  /// participates.  Exceptions from fn abort the rest of that chunk and
  /// the first one is rethrown on the caller.  Steady-state calls perform
  /// no heap allocation.
  template <class F>
  void parallel_for(std::size_t count, F fn) {
    parallel_for_chunked(count, default_chunk(count), std::move(fn));
  }

  /// parallel_for with an explicit chunk size: workers claim contiguous
  /// ranges of `chunk` indices from a shared cursor and run fn(i) for
  /// each index of the claimed range.
  template <class F>
  void parallel_for_chunked(std::size_t count, std::size_t chunk, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        count, chunk,
        [](void* ctx, unsigned, std::size_t begin, std::size_t end) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::size_t i = begin; i < end; ++i) f(i);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  /// Chunk-granular form for callers that manage per-participant scratch:
  /// fn(participant, begin, end) is invoked once per claimed range, with
  /// `participant` in [0, worker_count()] unique to the executing thread
  /// for the duration of the job (0 is the calling thread).
  template <class F>
  void parallel_for_ranges(std::size_t count, std::size_t chunk, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        count, chunk,
        [](void* ctx, unsigned participant, std::size_t begin, std::size_t end) {
          Fn& f = *static_cast<Fn*>(ctx);
          f(participant, begin, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }
  /// Threads that can execute chunks: the workers plus the caller.
  [[nodiscard]] unsigned participant_count() const noexcept {
    return worker_count() + 1;
  }

  /// Default chunk size: a handful of claims per participant, so the
  /// cursor overhead stays negligible while load still balances.
  [[nodiscard]] std::size_t default_chunk(std::size_t count) const noexcept {
    const std::size_t targets = std::size_t{participant_count()} * 8;
    const std::size_t chunk = count / targets;
    return chunk == 0 ? 1 : chunk;
  }

 private:
  /// One type-erased range invocation per claimed chunk.
  using RangeFn = void (*)(void* ctx, unsigned participant, std::size_t begin,
                           std::size_t end);

  /// The single in-flight job, embedded so steady-state submissions do
  /// not allocate.  All fields are guarded by mutex_.
  struct Job {
    RangeFn invoke = nullptr;
    void* ctx = nullptr;
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::size_t next = 0;  ///< claim cursor (indices below are claimed)
    std::size_t done = 0;  ///< indices whose chunk finished executing
    std::exception_ptr error;
  };

  void run_job(std::size_t count, std::size_t chunk, RangeFn invoke, void* ctx);
  void drain(unsigned participant);
  void worker_loop(unsigned participant);

  std::mutex submit_mutex_;  ///< serializes whole jobs
  std::mutex mutex_;         ///< guards job_ and the condition variables
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  Job job_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace polyeval::simt
