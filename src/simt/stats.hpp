#pragma once

/// \file stats.hpp
/// Instrumentation records produced by the simulator: per-launch kernel
/// statistics (work, memory behaviour, occupancy) feeding the timing
/// model and the memory-behaviour assertions in the tests.

#include <cstdint>
#include <string>
#include <vector>

namespace polyeval::simt {

/// Per-launch statistics.  "Requests" are warp-level memory instructions;
/// "transactions" are the 128-byte segment accesses they decompose into.
/// A fully coalesced request costs ceil(bytes/128) transactions; scattered
/// requests cost up to one per lane.
struct KernelStats {
  std::string kernel;
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;
  std::uint64_t warps = 0;

  // Work (complex-arithmetic operations, the paper's cost unit).
  std::uint64_t complex_mul_total = 0;
  std::uint64_t complex_add_total = 0;
  std::uint64_t complex_mul_per_thread_max = 0;
  std::uint64_t complex_add_per_thread_max = 0;

  // Global memory behaviour.
  std::uint64_t global_load_requests = 0;
  std::uint64_t global_load_transactions = 0;
  std::uint64_t global_store_requests = 0;
  std::uint64_t global_store_transactions = 0;
  std::uint64_t global_bytes_loaded = 0;
  std::uint64_t global_bytes_stored = 0;

  // Shared memory behaviour: cycles >= requests, the excess counts
  // bank-conflict serialization.
  std::uint64_t shared_requests = 0;
  std::uint64_t shared_cycles = 0;

  // Constant memory reads (served by the constant cache, broadcast).
  std::uint64_t constant_reads = 0;

  // SIMT uniformity: lanes that marked themselves inactive in a phase.
  std::uint64_t inactive_lane_phases = 0;

  // Race hazards found by the journal (unordered same-phase accesses to
  // one location with a writer involved); launches throw on these unless
  // LaunchConfig::detect_races is cleared.
  std::uint64_t race_hazards = 0;

  // Occupancy-derived quantities.
  unsigned warps_per_block = 0;
  unsigned concurrent_blocks_per_sm = 0;  ///< resource-limited residency
  unsigned waves = 0;                     ///< ceil(blocks / (SMs * residency))
  std::uint64_t warps_on_busiest_sm = 0;  ///< serialization depth
  std::size_t shared_bytes_per_block = 0;

  /// Coalescing efficiency of loads: 1.0 means every request hit the
  /// minimum possible number of segments.
  [[nodiscard]] double load_coalescing_ratio() const noexcept {
    return global_load_transactions == 0
               ? 1.0
               : static_cast<double>(global_load_requests) /
                     static_cast<double>(global_load_transactions);
  }
  [[nodiscard]] double store_coalescing_ratio() const noexcept {
    return global_store_transactions == 0
               ? 1.0
               : static_cast<double>(global_store_requests) /
                     static_cast<double>(global_store_transactions);
  }
  /// Extra shared-memory cycles caused by bank conflicts.
  [[nodiscard]] std::uint64_t bank_conflict_cycles() const noexcept {
    return shared_cycles - shared_requests;
  }
  /// Transactions per warp-level load request -- the profiling layer's
  /// access-pattern unit (1.0 = one segment per request, fully
  /// coalesced; the inverse of load_coalescing_ratio).
  [[nodiscard]] double load_transactions_per_request() const noexcept {
    return global_load_requests == 0
               ? 0.0
               : static_cast<double>(global_load_transactions) /
                     static_cast<double>(global_load_requests);
  }
  [[nodiscard]] double store_transactions_per_request() const noexcept {
    return global_store_requests == 0
               ? 0.0
               : static_cast<double>(global_store_transactions) /
                     static_cast<double>(global_store_requests);
  }
  /// Shared-memory cycles per request: 1.0 is conflict-free, N means
  /// the average request serializes N-way on the banks.
  [[nodiscard]] double shared_serialization() const noexcept {
    return shared_requests == 0 ? 1.0
                                : static_cast<double>(shared_cycles) /
                                      static_cast<double>(shared_requests);
  }
};

/// Host <-> device traffic (the PCIe term of the timing model).
struct TransferStats {
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_from_device = 0;
  std::uint64_t transfers_to_device = 0;
  std::uint64_t transfers_from_device = 0;
};

/// Everything one evaluation (or any instrumented region) produced.
struct LaunchLog {
  std::vector<KernelStats> kernels;
  TransferStats transfers;

  void clear() {
    kernels.clear();
    transfers = {};
  }
};

}  // namespace polyeval::simt
