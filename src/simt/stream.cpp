#include "simt/stream.hpp"

#include <algorithm>

namespace polyeval::simt {

void Stream::enqueue_copy(const CopyCommand& cmd) {
  cmd.run();  // eager host execution; modeled asynchrony below
  device_->note_transfer(cmd.to_device, cmd.bytes);
  if (cmd.to_device && device_->audit() != nullptr)
    device_->audit()->on_host_write(cmd.device_address, cmd.bytes);

  auto& engines = device_->engine_clocks();
  double& engine = cmd.to_device ? engines.h2d_ready_us : engines.d2h_ready_us;
  const double start = std::max(now_us_, engine);
  const double end = start + estimate_copy_us(cmd.bytes, cost_);
  engine = end;
  now_us_ = end;

  if (cmd.to_device) {
    log_.transfers.bytes_to_device += cmd.bytes;
    ++log_.transfers.transfers_to_device;
  } else {
    log_.transfers.bytes_from_device += cmd.bytes;
    ++log_.transfers.transfers_from_device;
  }
  timeline_.push_back({cmd.to_device ? StreamOp::kCopyH2D : StreamOp::kCopyD2H,
                       start, end, cmd.bytes});
}

KernelStats Stream::launch(const Kernel& kernel, const LaunchConfig& cfg) {
  // Eager host execution through the device (pool, scratch, device log).
  KernelStats stats = device_->launch(kernel, cfg);

  auto& engines = device_->engine_clocks();
  const double start = std::max(now_us_, engines.compute_ready_us);
  const double end = start + estimate_kernel_us(stats, device_->spec(), cost_);
  engines.compute_ready_us = end;
  now_us_ = end;

  log_.kernels.push_back(stats);
  timeline_.push_back({StreamOp::kKernel, start, end, 0});
  return stats;
}

void Stream::record(Event& event) {
  event.time_us_ = now_us_;
  ++event.records_;
  timeline_.push_back({StreamOp::kRecord, now_us_, now_us_, 0});
}

void Stream::wait(const Event& event) {
  if (event.recorded()) now_us_ = std::max(now_us_, event.time_us_);
  timeline_.push_back({StreamOp::kWait, now_us_, now_us_, 0});
}

void Stream::reset() {
  now_us_ = 0.0;
  log_.clear();
  timeline_.clear();
}

void Stream::reserve(std::size_t kernels, std::size_t timeline_entries) {
  log_.kernels.reserve(kernels);
  timeline_.reserve(timeline_entries);
}

}  // namespace polyeval::simt
