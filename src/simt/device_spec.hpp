#pragma once

/// \file device_spec.hpp
/// Hardware descriptions for the simulated device and the baseline CPU.
/// The defaults describe the paper's testbed: an NVIDIA Tesla C2050
/// (Fermi) and one core of an Intel Xeon X5690.

#include <cstddef>
#include <string>

namespace polyeval::simt {

/// Static properties of the simulated CUDA device.
struct DeviceSpec {
  std::string name = "NVIDIA Tesla C2050 (simulated)";
  unsigned multiprocessors = 14;        ///< streaming multiprocessors
  unsigned cores_per_sm = 32;           ///< CUDA cores per SM
  unsigned warp_size = 32;
  unsigned max_threads_per_block = 1024;
  unsigned max_blocks_per_sm = 8;       ///< Fermi concurrent-block limit
  unsigned max_threads_per_sm = 1536;   ///< Fermi resident-thread limit
  std::size_t shared_memory_per_block = 49152;  ///< 48 KB
  std::size_t constant_memory_bytes = 65536;    ///< 64 KB (the paper's cap)
  /// Constant memory the toolchain keeps for kernel parameters and
  /// compiler-generated constants; user data gets the rest.  This is why
  /// 2048 monomials at k=16 (exactly 65536 bytes of positions+exponents)
  /// did NOT fit in section 4.
  std::size_t constant_reserved_bytes = 1024;
  std::size_t global_memory_bytes = std::size_t(3) << 30;  ///< 3 GB
  unsigned shared_banks = 32;
  unsigned shared_bank_width_bytes = 4;
  unsigned global_transaction_bytes = 128;  ///< coalesced segment size
  double core_clock_mhz = 1147.0;

  friend bool operator==(const DeviceSpec&, const DeviceSpec&) = default;

  [[nodiscard]] unsigned total_cores() const noexcept {
    return multiprocessors * cores_per_sm;
  }
  [[nodiscard]] double clock_hz() const noexcept { return core_clock_mhz * 1.0e6; }

  /// Modeled raw throughput: shader clock x core count, the product the
  /// heterogeneity-aware schedulers derive placement weights from (a
  /// device with half the clock or half the SMs earns half the chunks).
  /// Purely modeled -- never feeds arithmetic, so placement derived from
  /// it cannot move an endpoint bit.
  [[nodiscard]] double modeled_throughput() const noexcept {
    return clock_hz() * static_cast<double>(total_cores());
  }

  /// The paper's card.
  [[nodiscard]] static DeviceSpec tesla_c2050() { return {}; }

  /// A derated variant for mixed-fleet tests and benches: the same
  /// geometry at `factor` times the shader clock (0 < factor <= 1
  /// models an older/thermally-limited card; the timing model scales
  /// kernel compute time by 1/factor while fixed launch and PCIe costs
  /// stay put, exactly how a slow card drags a real fleet).
  [[nodiscard]] DeviceSpec derated(double factor, std::string renamed) const {
    DeviceSpec spec = *this;
    spec.core_clock_mhz *= factor;
    spec.name = std::move(renamed);
    return spec;
  }
};

/// Static properties of the sequential baseline processor.
struct CpuSpec {
  std::string name = "Intel Xeon X5690 (one core, modeled)";
  double clock_ghz = 3.47;

  [[nodiscard]] static CpuSpec xeon_x5690() { return {}; }
};

}  // namespace polyeval::simt
