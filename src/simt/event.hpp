#pragma once

/// \file event.hpp
/// Events for the stream subsystem -- the cudaEvent_t analogue.
///
/// An Event marks a point in a stream's command sequence.  Recording it
/// (Stream::record) stamps the stream's modeled clock into the event;
/// waiting on it (Stream::wait) holds the waiting stream's modeled clock
/// back to that stamp, which is how cross-stream dependences (the
/// double-buffer schedule's "compute i must follow upload i") enter the
/// modeled timeline.  Host-side the simulator executes commands eagerly
/// in enqueue order (see stream.hpp), so an event is already complete by
/// the time anything can wait on it; the modeled timestamp is the part
/// that carries information, and it is deterministic because it derives
/// only from deterministic kernel/transfer statistics.
///
/// Matching CUDA semantics, waiting on a never-recorded event is a
/// no-op, and re-recording overwrites the stamp (record_count() lets
/// tests and schedulers distinguish generations).  Events hold no heap
/// state: record/wait/reset never allocate.

#include <cstdint>

namespace polyeval::simt {

class Stream;

class Event {
 public:
  /// True once any stream recorded this event.
  [[nodiscard]] bool recorded() const noexcept { return records_ > 0; }

  /// Modeled-clock stamp of the most recent record (microseconds on the
  /// recording stream's timeline); 0 before the first record.
  [[nodiscard]] double modeled_time_us() const noexcept { return time_us_; }

  /// How many times the event was recorded (re-records overwrite the
  /// stamp, the cudaEventRecord convention).
  [[nodiscard]] std::uint64_t record_count() const noexcept { return records_; }

  /// Modeled time elapsed since `earlier` was recorded -- the
  /// cudaEventElapsedTime analogue.
  [[nodiscard]] double modeled_elapsed_us(const Event& earlier) const noexcept {
    return time_us_ - earlier.time_us_;
  }

  /// Forget every record (between instrumented regions).
  void reset() noexcept {
    time_us_ = 0.0;
    records_ = 0;
  }

 private:
  friend class Stream;

  double time_us_ = 0.0;
  std::uint64_t records_ = 0;
};

}  // namespace polyeval::simt
