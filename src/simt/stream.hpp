#pragma once

/// \file stream.hpp
/// Streams for the simulated device -- the cudaStream_t analogue.
///
/// A Stream is an ordered per-device command queue: async H2D/D2H
/// copies, kernel launches, event records and event waits, issued in
/// program order.  Commands on one stream are ordered; commands on
/// different streams of the same device are unordered except through
/// events -- exactly the CUDA contract the paper's lineage uses to hide
/// host<->device transfers behind kernel execution.
///
/// Execution model.  The simulator splits the two things a real stream
/// does:
///
///   * HOST execution is eager and deterministic: every command runs to
///     completion on the enqueuing thread before the enqueue call
///     returns (kernel commands run through the device's existing
///     worker pool, exactly as synchronous launches do).  This keeps
///     results bitwise identical to the synchronous path by
///     construction and keeps the zero-allocation and race-journal
///     machinery untouched.  The cost of eagerness: the enqueue order
///     must be a valid serialization of the dependence DAG (which any
///     correct CUDA program's enqueue order is -- a stream schedule
///     whose host data would only be produced later cannot be
///     expressed, and would deadlock a real device too).
///
///   * the MODELED clock is where the asynchrony lives.  Each stream
///     carries a modeled "now"; each command starts at
///     max(stream now, engine ready, waited events) and advances both
///     by its modeled duration (estimate_copy_us / estimate_kernel_us).
///     The device-wide AsyncEngineClocks serialize kernels on one
///     compute engine and copies on one DMA engine per direction (the
///     C2050's layout), so modeled overlap is exactly what the 2012
///     hardware could overlap: upload(i+1) and download(i-1) under
///     compute(i), never two kernels.  Timestamps derive only from
///     deterministic launch statistics, so the modeled timeline is
///     bit-reproducible across runs, schedules and host core counts.
///
/// Logs: every command lands in the per-stream LaunchLog and timeline
/// (cleared by reset(), capacity kept), and is mirrored into the
/// device-wide log so existing consumers (sharded merges, the
/// regression benches) keep seeing all traffic.  Steady-state enqueues
/// perform no heap allocation once reserve() (or a warm-up pass) has
/// sized the vectors.
///
/// Threading: streams of one device may be driven from one thread at a
/// time (the sharded layout drives each device from its shard's manager
/// thread).  Concurrent enqueues on different devices are fine.

#include <vector>

#include "simt/device.hpp"
#include "simt/event.hpp"
#include "simt/timing.hpp"

namespace polyeval::simt {

/// What a timeline entry was (per-stream modeled schedule record).
enum class StreamOp : unsigned char { kCopyH2D, kCopyD2H, kKernel, kRecord, kWait };

/// One command's modeled interval on its stream.  Record/wait entries
/// are zero-width markers.
struct StreamTimelineEntry {
  StreamOp op;
  double start_us;
  double end_us;
  std::uint64_t bytes;  ///< copy payload; 0 for kernels and markers
};

class Stream {
 public:
  /// A stream of `device`.  `cost` prices the modeled durations; the
  /// default is the calibrated C2050 model (timing.hpp).
  explicit Stream(Device& device, GpuCostModel cost = {})
      : device_(&device), cost_(cost) {}

  [[nodiscard]] Device& device() const noexcept { return *device_; }
  [[nodiscard]] const GpuCostModel& cost_model() const noexcept { return cost_; }

  // -- async copies (cudaMemcpyAsync analogues) -------------------------
  template <class T>
  void copy_to_device_async(const GlobalBuffer<T>& dst, std::span<const T> src) {
    enqueue_copy(CopyCommand::h2d(dst, src));
  }
  template <class T>
  void copy_from_device_async(const GlobalBuffer<T>& src, std::span<T> dst) {
    enqueue_copy(CopyCommand::d2h(src, dst));
  }
  /// Pre-built command form (the type-erased unit schedulers stage).
  void enqueue_copy(const CopyCommand& cmd);

  // -- kernels ----------------------------------------------------------
  /// Launch on this stream: runs through the device pool like a
  /// synchronous launch, then advances the stream and compute-engine
  /// clocks by the modeled kernel time.
  KernelStats launch(const Kernel& kernel, const LaunchConfig& cfg);

  // -- events -----------------------------------------------------------
  /// Stamp the stream's modeled clock into the event (cudaEventRecord).
  void record(Event& event);
  /// Hold this stream's modeled clock back to the event's stamp
  /// (cudaStreamWaitEvent).  Waiting on a never-recorded event is a
  /// no-op, matching CUDA.
  void wait(const Event& event);

  // -- synchronization and introspection --------------------------------
  /// Host work is already complete (eager execution); returns the
  /// modeled completion time of everything enqueued so far.
  double synchronize() const noexcept { return now_us_; }
  [[nodiscard]] double modeled_now_us() const noexcept { return now_us_; }

  /// This stream's slice of the traffic: kernels launched and copies
  /// issued here (the device log holds the union across streams).
  [[nodiscard]] const LaunchLog& log() const noexcept { return log_; }
  /// Modeled schedule of every command, in enqueue order.
  [[nodiscard]] const std::vector<StreamTimelineEntry>& timeline() const noexcept {
    return timeline_;
  }

  /// Start a fresh instrumented region: modeled clock back to zero, log
  /// and timeline cleared with capacity kept.  Callers owning several
  /// streams of one device should also reset the shared engine clocks
  /// (`device().engine_clocks().reset()`) exactly once.
  void reset();

  /// Pre-size the log and timeline for a known command pattern so
  /// steady-state enqueues stay off the allocator (the Device
  /// reserve_log convention).
  void reserve(std::size_t kernels, std::size_t timeline_entries);

 private:
  Device* device_;
  GpuCostModel cost_;
  double now_us_ = 0.0;
  LaunchLog log_;
  std::vector<StreamTimelineEntry> timeline_;
};

}  // namespace polyeval::simt
