#include "simt/thread_pool.hpp"

namespace polyeval::simt {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::drain(Job& job) {
  std::size_t i;
  while ((i = job.next.fetch_add(1)) < job.count) {
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    job.done.fetch_add(1);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  {
    std::lock_guard lock(mutex_);
    job_ = job;
  }
  cv_job_.notify_all();

  drain(*job);

  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return job->done.load() >= job->count; });
    job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      cv_job_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && job_->next.load() < job_->count);
      });
      if (stop_) return;
      job = job_;
    }
    drain(*job);
    cv_done_.notify_all();
  }
}

}  // namespace polyeval::simt
