#include "simt/thread_pool.hpp"

#include <algorithm>

namespace polyeval::simt {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::drain(unsigned participant) {
  for (;;) {
    std::size_t begin, end;
    {
      std::lock_guard lock(mutex_);
      if (job_.next >= job_.count) return;
      begin = job_.next;
      end = std::min(begin + job_.chunk, job_.count);
      job_.next = end;
    }
    // invoke/ctx are stable while any chunk is outstanding: the caller
    // cannot set up a new job before done reaches count.
    std::exception_ptr error;
    try {
      job_.invoke(job_.ctx, participant, begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    bool complete;
    {
      std::lock_guard lock(mutex_);
      if (error && !job_.error) job_.error = error;
      job_.done += end - begin;
      complete = job_.done >= job_.count;
    }
    if (complete) cv_done_.notify_all();
  }
}

void ThreadPool::run_job(std::size_t count, std::size_t chunk, RangeFn invoke,
                         void* ctx) {
  if (count == 0) return;
  const std::lock_guard submit(submit_mutex_);
  {
    std::lock_guard lock(mutex_);
    job_.invoke = invoke;
    job_.ctx = ctx;
    job_.count = count;
    job_.chunk = chunk == 0 ? 1 : chunk;
    job_.next = 0;
    job_.done = 0;
    job_.error = nullptr;
  }
  cv_job_.notify_all();

  drain(0);

  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return job_.done >= job_.count; });
  }
  if (job_.error) std::rethrow_exception(job_.error);
}

void ThreadPool::worker_loop(unsigned participant) {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_job_.wait(lock, [&] { return stop_ || job_.next < job_.count; });
      if (stop_) return;
    }
    drain(participant);
  }
}

}  // namespace polyeval::simt
