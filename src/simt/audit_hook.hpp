#pragma once

/// \file audit_hook.hpp
/// The engine-side instrumentation interface of the kernel access
/// auditor (the cuda-memcheck initcheck/synccheck analogue).
///
/// An AccessAudit attached to a LaunchConfig (usually injected by
/// Device::set_audit) observes every memory access a kernel issues,
/// with full provenance: which block/phase/warp/lane/thread issued it,
/// which allocation owns the address, and the originating buffer's
/// extent.  The boolean return of the access hooks lets an auditor
/// *squash* an access it has flagged -- a squashed load yields T{} and
/// a squashed store is dropped -- so an out-of-bounds fixture can be
/// executed to completion without the simulator itself committing the
/// out-of-bounds host access it is reporting.
///
/// Audited launches run serially on the calling thread (see
/// run_kernel), so implementations need no locking and observe
/// accesses in deterministic program order: blocks ascending, phases
/// in kernel order within a block, warps ascending within a phase,
/// lanes ascending within a warp.
///
/// This header is deliberately free of any dependency on src/audit:
/// the engine only knows the hook shape, the checkers live behind it.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace polyeval::simt {

/// Where an access came from, in kernel coordinates.
struct AuditSite {
  unsigned block = 0;
  unsigned phase = 0;
  unsigned warp = 0;
  unsigned lane = 0;
  unsigned thread = 0;  ///< thread index within the block
};

/// Observer for every access of an audited launch.  All access hooks
/// return `true` to let the access proceed and `false` to squash it.
class AccessAudit {
 public:
  virtual ~AccessAudit() = default;

  /// A launch begins; accesses reported until end_launch belong to it.
  virtual void begin_launch(std::string_view kernel, unsigned grid_blocks,
                            unsigned block_threads, std::size_t shared_bytes) = 0;
  virtual void end_launch() = 0;

  /// Global-memory access.  `buffer_address`/`buffer_bytes` describe
  /// the GlobalBuffer the access was issued through, so an overrun is
  /// checked against the *originating* buffer's extent -- an access
  /// that lands inside a neighbouring allocation is still a finding.
  virtual bool on_global_load(const AuditSite& site, std::uint64_t address,
                              std::size_t bytes, std::uint64_t buffer_address,
                              std::size_t buffer_bytes) = 0;
  virtual bool on_global_store(const AuditSite& site, std::uint64_t address,
                               std::size_t bytes, std::uint64_t buffer_address,
                               std::size_t buffer_bytes) = 0;

  /// Shared-memory access at `byte_offset` within the block's arena.
  virtual bool on_shared_access(const AuditSite& site, std::size_t byte_offset,
                                std::size_t bytes, bool is_write) = 0;

  /// Constant-memory load through the named ConstantBuffer.
  virtual bool on_constant_load(const AuditSite& site, std::string_view buffer,
                                std::size_t byte_offset, std::size_t bytes,
                                std::size_t buffer_bytes) = 0;

  /// The thread at `site` declared itself inactive for this phase.
  virtual void on_inactive(const AuditSite& site) = 0;

  /// Host-side initialization of [address, address+bytes): upload,
  /// fill, or an h2d stream copy.  Default no-op so the Device can
  /// notify unconditionally.
  virtual void on_host_write(std::uint64_t address, std::size_t bytes) {
    (void)address;
    (void)bytes;
  }

  /// Device::reset_memory discarded every allocation.
  virtual void on_memory_reset() {}
};

}  // namespace polyeval::simt
