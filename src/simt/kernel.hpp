#pragma once

/// \file kernel.hpp
/// The SIMT execution model of the simulator.
///
/// A Kernel is a named sequence of *phases*; a phase is a function run by
/// every thread of every block, and consecutive phases are separated by an
/// implicit block-wide barrier (__syncthreads).  Within a warp the lanes
/// execute a phase in lockstep order, and the engine groups the i-th
/// global/shared memory access of each lane into one warp-level request --
/// reproducing how coalescing and bank conflicts form on the real device.
///
/// The engine keeps per-worker scratch (shared-memory arena, access
/// collectors, race journals) alive across launches, so steady-state
/// launches perform no heap allocation.  The one piece of unbounded
/// state is the Device launch log, which appends one KernelStats per
/// launch: long-running users must call Device::clear_log()
/// periodically (it keeps capacity) for the hot path to stay
/// allocation-free end to end.

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "simt/audit_hook.hpp"
#include "simt/device_spec.hpp"
#include "simt/memory.hpp"
#include "simt/shared_memory.hpp"
#include "simt/stats.hpp"

namespace polyeval::simt {

class ThreadPool;
class ThreadContext;

/// Grid/block geometry plus the block's shared-memory allocation.
struct LaunchConfig {
  unsigned grid_blocks = 1;
  unsigned block_threads = 32;
  std::size_t shared_bytes = 0;
  /// Race checking (the cuda-memcheck racecheck analogue): within one
  /// phase, a shared word or global address touched by two different
  /// threads with at least one write is a hazard -- phases are the only
  /// barriers, so such accesses are unordered on real hardware.  Hazards
  /// throw LaunchError when enabled.
  bool detect_races = true;
  /// Access auditor (the initcheck/synccheck analogue): when set, the
  /// launch runs serially on the calling thread and every access is
  /// reported to the hook, which may squash flagged accesses.  Devices
  /// inject their attached auditor here (see Device::set_audit); tests
  /// can also set it directly for one-off audited launches.
  AccessAudit* audit = nullptr;
};

using Phase = std::function<void(ThreadContext&)>;

struct Kernel {
  std::string name;
  std::vector<Phase> phases;
};

namespace detail {

/// Per-block-phase shared-memory access journal for race detection:
/// every shared word keeps the first accessor and whether anyone wrote.
/// Backed by a flat word-indexed table with epoch stamping, so clearing
/// between phases is O(1) and steady-state use never allocates.
struct SharedRaceJournal {
  struct WordState {
    std::uint64_t epoch = 0;
    unsigned thread = 0;  ///< first accessor this epoch
    unsigned other = 0;   ///< latest accessor that differed from `thread`
    bool written = false;
    bool multi_thread = false;
  };
  std::vector<WordState> words;
  std::uint64_t epoch = 0;

  /// Size the table for a block touching words [0, word_count).
  void prepare(std::size_t word_count) {
    if (words.size() < word_count) words.resize(word_count);
  }

  /// Record an access; returns true when it completes a hazard
  /// (two distinct threads, at least one write).  On a hazard,
  /// `other_thread` (when non-null) receives the conflicting thread.
  bool record(std::uint32_t word, unsigned thread, bool is_write,
              unsigned* other_thread = nullptr);
  void clear() { ++epoch; }
};

/// Launch-wide global-memory write journal: double-writes to one address
/// by different threads (any blocks) within one kernel are hazards.
/// Sharded by address hash: each shard is an independent mutex-guarded
/// open-addressing table, so concurrent participants (several host
/// workers, or several devices of a sharded evaluator running checked
/// launches at once) only contend when their writes hash to the same
/// shard instead of serializing on one launch-wide lock.  Tables are
/// epoch-stamped, persist across launches, and only grow while a launch
/// writes more distinct addresses than any launch before it.
struct GlobalRaceJournal {
  /// Power of two; 16 shards cut the worst-case contention of a
  /// many-core host by an order of magnitude while the per-shard
  /// footprint stays one cache-warm table.
  static constexpr unsigned kAddressShardBits = 4;
  static constexpr std::size_t kAddressShards = std::size_t{1} << kAddressShardBits;

  struct Slot {
    std::uint64_t epoch = 0;
    std::uint64_t address = 0;
    std::uint64_t thread = 0;
  };

  /// One address-hash shard: the pre-sharding journal, verbatim.
  /// Aligned out of false sharing with its neighbours' mutexes.
  struct alignas(64) Shard {
    std::vector<Slot> slots;
    std::size_t filled = 0;  ///< slots claimed in the current epoch
    std::uint64_t epoch = 0;
    std::mutex mutex;

    void begin_launch();
    /// Returns true when `address` was already written by a different
    /// thread this launch; `other_thread` then receives the prior writer.
    bool record_write(std::uint64_t address, std::uint64_t global_thread,
                      std::uint64_t* other_thread = nullptr);

   private:
    [[nodiscard]] std::size_t probe_start(std::uint64_t address) const noexcept {
      return static_cast<std::size_t>((address * 0x9E3779B97F4A7C15ull) >> 32) &
             (slots.size() - 1);
    }
    void grow();
  };

  std::array<Shard, kAddressShards> shards;

  /// Start a new launch: previous entries expire in O(1) per shard.
  void begin_launch() {
    for (auto& shard : shards) shard.begin_launch();
  }
  bool record_write(std::uint64_t address, std::uint64_t global_thread,
                    std::uint64_t* other_thread = nullptr) {
    return shards[shard_of(address)].record_write(address, global_thread,
                                                  other_thread);
  }

  /// Top bits of the same multiplicative mix the in-shard probe uses its
  /// middle bits of -- shard choice and probe position stay independent.
  [[nodiscard]] static std::size_t shard_of(std::uint64_t address) noexcept {
    return static_cast<std::size_t>((address * 0x9E3779B97F4A7C15ull) >>
                                    (64 - kAddressShardBits));
  }
};

/// Warp-level grouping of the accesses issued during one phase: the i-th
/// access of each lane forms request i.  Reused across warps and phases;
/// reset() keeps every vector's capacity.
struct WarpCollector {
  struct GlobalGroup {
    std::vector<std::uint64_t> segments;  // distinct 128B segments touched
  };
  /// One lane access = one contiguous run of 4-byte shared words; the
  /// fold pass expands runs against an epoch-stamped seen-table, which
  /// is much cheaper than materializing every word here.
  struct SharedGroup {
    struct Run {
      std::uint32_t first_word;
      std::uint32_t words;
    };
    std::vector<Run> runs;
  };

  std::vector<GlobalGroup> loads;
  std::vector<GlobalGroup> stores;
  std::vector<SharedGroup> shared;
  std::size_t loads_used = 0;
  std::size_t stores_used = 0;
  std::size_t shared_used = 0;

  /// Group counts another collector reached; used to pre-size cold
  /// collectors so every engine participant is warm after launch one.
  struct Shape {
    std::size_t loads = 0, stores = 0, shared = 0;

    void merge(const WarpCollector& col) {
      loads = std::max(loads, col.loads.size());
      stores = std::max(stores, col.stores.size());
      shared = std::max(shared, col.shared.size());
    }
  };

  void reset();
  void warm(const Shape& shape);
  void record_global(bool is_store, std::size_t ordinal, std::uint64_t address,
                     std::size_t bytes, unsigned segment_bytes);
  void record_shared(std::size_t ordinal, std::uint32_t first_word, std::size_t words);
};

/// The first race hazard a launch hit, kept so the LaunchError can name
/// the kernel phase, the contested word/address and both threads.
struct RaceDetail {
  bool valid = false;
  bool shared = false;  ///< `address` is a shared word index, not global
  std::uint64_t address = 0;
  unsigned phase = 0;
  unsigned block = 0;
  std::uint64_t thread_a = 0;  ///< the access that completed the hazard
  std::uint64_t thread_b = 0;  ///< the prior conflicting accessor
};

/// Per-block tallies, merged into the launch totals when the block retires.
struct BlockAccum {
  std::uint64_t cmul = 0, cadd = 0;
  std::uint64_t cmul_thread_max = 0, cadd_thread_max = 0;
  std::uint64_t load_requests = 0, load_transactions = 0, load_bytes = 0;
  std::uint64_t store_requests = 0, store_transactions = 0, store_bytes = 0;
  std::uint64_t shared_requests = 0, shared_cycles = 0;
  std::uint64_t constant_reads = 0;
  std::uint64_t inactive_lane_phases = 0;
  std::uint64_t race_hazards = 0;
  RaceDetail first_hazard;
};

}  // namespace detail

/// Everything one engine participant (pool worker or the caller) reuses
/// across the blocks it executes: the simulated shared-memory arena, the
/// warp access collector, the shared race journal and the fold scratch.
struct BlockScratch {
  SharedSpace shared{0};
  detail::SharedRaceJournal shared_races;
  detail::WarpCollector collector;
  std::vector<std::uint64_t> cmul_per_thread;
  std::vector<std::uint64_t> cadd_per_thread;
  std::vector<std::uint64_t> fold_seen;  ///< epoch-stamped word dedupe table
  std::uint64_t fold_epoch = 0;
  std::vector<std::uint64_t> fold_bank_epoch;  ///< epoch-stamped bank counts
  std::vector<std::uint32_t> fold_per_bank;

  /// Fold a retired warp-phase collector into `accum`, computing
  /// transactions and bank-conflict cycles.
  void fold(const detail::WarpCollector& col, const DeviceSpec& spec,
            detail::BlockAccum& accum);

  /// Deterministically size everything this launch shape needs, so a
  /// participant that sat out earlier launches does not allocate when a
  /// chunk finally lands on it mid-run.
  void warm(const LaunchConfig& cfg, const DeviceSpec& spec,
            const detail::WarpCollector::Shape& shape);
};

/// Launch-lifetime engine state a Device keeps alive between launches so
/// the steady-state hot path is allocation-free.
struct EngineScratch {
  std::vector<BlockScratch> per_participant;
  detail::GlobalRaceJournal global_races;
  /// Largest collector shape any participant has reached; replayed onto
  /// every participant at launch start (see BlockScratch::warm).
  detail::WarpCollector::Shape observed_shape;

  void prepare(unsigned participants) {
    if (per_participant.size() < participants) per_participant.resize(participants);
  }
};

/// Everything a simulated thread sees: its identity, the memory spaces,
/// and the instrumentation hooks.  Only valid during the phase call.
class ThreadContext {
 public:
  // -- identity ---------------------------------------------------------
  [[nodiscard]] unsigned block_index() const noexcept { return block_; }
  [[nodiscard]] unsigned thread_index() const noexcept { return thread_; }
  [[nodiscard]] unsigned block_dim() const noexcept { return cfg_->block_threads; }
  [[nodiscard]] unsigned grid_dim() const noexcept { return cfg_->grid_blocks; }
  [[nodiscard]] unsigned lane() const noexcept { return thread_ % spec_->warp_size; }
  [[nodiscard]] unsigned warp() const noexcept { return thread_ / spec_->warp_size; }
  [[nodiscard]] std::size_t global_thread_index() const noexcept {
    return static_cast<std::size_t>(block_) * cfg_->block_threads + thread_;
  }

  // -- work accounting (the paper's complex-multiplication cost model) --
  void op_cmul(std::uint64_t n = 1) noexcept { cmul_ += n; }
  void op_cadd(std::uint64_t n = 1) noexcept { cadd_ += n; }

  /// A lane that has no work in this phase (e.g. threads beyond the first
  /// n in stage one of kernel one) calls this: it is the simulator's
  /// measure of SIMT divergence / idle lanes.
  void mark_inactive() {
    ++inactive_;
    if (audit_ != nullptr) audit_->on_inactive(audit_site());
  }

  // -- global memory ----------------------------------------------------
  template <class T>
  [[nodiscard]] T load(const GlobalBuffer<T>& buf, std::size_t i) {
    const std::uint64_t address = buf.device_address() + i * sizeof(T);
    collector_->record_global(false, load_ord_++, address, sizeof(T),
                              spec_->global_transaction_bytes);
    load_bytes_ += sizeof(T);
    // The audit verdict gates the raw access: a squashed out-of-bounds
    // load must never touch host memory past the allocation's storage.
    if (audit_ != nullptr &&
        !audit_->on_global_load(audit_site(), address, sizeof(T),
                                buf.device_address(), buf.size() * sizeof(T)))
      return T{};
    return buf.raw()[i];
  }

  template <class T>
  void store(const GlobalBuffer<T>& buf, std::size_t i, const T& v) {
    const std::uint64_t address = buf.device_address() + i * sizeof(T);
    collector_->record_global(true, store_ord_++, address, sizeof(T),
                              spec_->global_transaction_bytes);
    store_bytes_ += sizeof(T);
    if (global_races_ != nullptr) {
      std::uint64_t other = 0;
      if (global_races_->record_write(address, global_thread_index(), &other)) {
        ++race_hazards_;
        note_race(false, address, global_thread_index(), other);
      }
    }
    if (audit_ != nullptr &&
        !audit_->on_global_store(audit_site(), address, sizeof(T),
                                 buf.device_address(), buf.size() * sizeof(T)))
      return;
    buf.raw()[i] = v;
  }

  // -- constant memory (broadcast through the constant cache) -----------
  template <class T>
  [[nodiscard]] T load_constant(const ConstantBuffer<T>& buf, std::size_t i) {
    ++const_reads_;
    if (audit_ != nullptr &&
        !audit_->on_constant_load(audit_site(), buf.name(), i * sizeof(T),
                                  sizeof(T), buf.size() * sizeof(T)))
      return T{};
    return buf.raw()[i];
  }

  // -- shared memory ----------------------------------------------------
  template <class T>
  class SharedView {
   public:
    [[nodiscard]] T get(std::size_t i) const {
      if (!ctx_->record_shared_access(byte_offset_ + i * sizeof(T), sizeof(T),
                                      false))
        return T{};
      return base_[i];
    }
    void set(std::size_t i, const T& v) const {
      if (ctx_->record_shared_access(byte_offset_ + i * sizeof(T), sizeof(T),
                                     true))
        base_[i] = v;
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }

   private:
    friend class ThreadContext;
    SharedView(ThreadContext* ctx, T* base, std::size_t count, std::size_t byte_offset)
        : ctx_(ctx), base_(base), count_(count), byte_offset_(byte_offset) {}
    ThreadContext* ctx_;
    T* base_;
    std::size_t count_;
    std::size_t byte_offset_;
  };

  /// Carve a typed view out of the block's shared allocation.
  template <class T>
  [[nodiscard]] SharedView<T> shared_array(std::size_t byte_offset, std::size_t count) {
    return SharedView<T>(this, shared_->typed<T>(byte_offset, count), count, byte_offset);
  }

 private:
  friend struct BlockRunner;

  ThreadContext(unsigned block, unsigned thread, unsigned phase,
                const LaunchConfig& cfg, const DeviceSpec& spec,
                SharedSpace& shared, detail::WarpCollector& collector,
                detail::SharedRaceJournal* shared_races,
                detail::GlobalRaceJournal* global_races,
                detail::RaceDetail* race_detail) noexcept
      : block_(block), thread_(thread), phase_(phase), cfg_(&cfg), spec_(&spec),
        shared_(&shared), collector_(&collector), shared_races_(shared_races),
        global_races_(global_races), race_detail_(race_detail),
        audit_(cfg.audit) {}

  [[nodiscard]] AuditSite audit_site() const noexcept {
    return AuditSite{block_, phase_, warp(), lane(), thread_};
  }

  /// Keep the first hazard's coordinates for the LaunchError diagnostic.
  void note_race(bool shared, std::uint64_t address, std::uint64_t thread_a,
                 std::uint64_t thread_b) noexcept {
    if (race_detail_ == nullptr || race_detail_->valid) return;
    *race_detail_ = {true, shared, address, phase_, block_, thread_a, thread_b};
  }

  /// Returns false when an attached auditor squashed the access.
  bool record_shared_access(std::size_t byte_offset, std::size_t bytes, bool is_write) {
    const auto first_word = static_cast<std::uint32_t>(byte_offset / spec_->shared_bank_width_bytes);
    const std::size_t words =
        (byte_offset % spec_->shared_bank_width_bytes + bytes +
         spec_->shared_bank_width_bytes - 1) /
        spec_->shared_bank_width_bytes;
    collector_->record_shared(shared_ord_++, first_word, words);
    if (shared_races_ != nullptr) {
      for (std::size_t w = 0; w < words; ++w) {
        unsigned other = 0;
        if (shared_races_->record(first_word + static_cast<std::uint32_t>(w), thread_,
                                  is_write, &other)) {
          ++race_hazards_;
          note_race(true, first_word + w, thread_, other);
        }
      }
    }
    if (audit_ != nullptr)
      return audit_->on_shared_access(audit_site(), byte_offset, bytes, is_write);
    return true;
  }

  unsigned block_;
  unsigned thread_;
  unsigned phase_;
  const LaunchConfig* cfg_;
  const DeviceSpec* spec_;
  SharedSpace* shared_;
  detail::WarpCollector* collector_;
  detail::SharedRaceJournal* shared_races_;
  detail::GlobalRaceJournal* global_races_;
  detail::RaceDetail* race_detail_;
  AccessAudit* audit_;

  std::size_t load_ord_ = 0, store_ord_ = 0, shared_ord_ = 0;
  std::uint64_t cmul_ = 0, cadd_ = 0;
  std::uint64_t const_reads_ = 0, inactive_ = 0;
  std::uint64_t load_bytes_ = 0, store_bytes_ = 0;
  std::uint64_t race_hazards_ = 0;
};

/// Execute a kernel on the simulated device, distributing contiguous
/// chunks of blocks over the host pool, and return its statistics.
/// Validates the launch against the device limits (throws LaunchError).
/// `scratch` carries the reusable engine state; launches through a
/// Device share one EngineScratch, which is what makes the steady-state
/// path allocation-free.
[[nodiscard]] KernelStats run_kernel(const Kernel& kernel, const LaunchConfig& cfg,
                                     const DeviceSpec& spec, ThreadPool& pool,
                                     EngineScratch& scratch);

/// Convenience overload with throwaway scratch (tests, one-shot launches).
[[nodiscard]] KernelStats run_kernel(const Kernel& kernel, const LaunchConfig& cfg,
                                     const DeviceSpec& spec, ThreadPool& pool);

}  // namespace polyeval::simt
