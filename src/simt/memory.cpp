#include "simt/memory.hpp"

#include <algorithm>

namespace polyeval::simt {

const detail::Allocation* GlobalMemory::find(std::uint64_t address) const noexcept {
  // Allocations are appended with strictly increasing addresses, so the
  // owner (if any) is the last allocation starting at or before `address`.
  const auto it = std::upper_bound(
      allocations_.begin(), allocations_.end(), address,
      [](std::uint64_t a, const std::unique_ptr<detail::Allocation>& alloc) {
        return a < alloc->address;
      });
  if (it == allocations_.begin()) return nullptr;
  const detail::Allocation* alloc = std::prev(it)->get();
  if (address - alloc->address >= alloc->bytes) return nullptr;  // padding
  return alloc;
}

detail::Allocation* GlobalMemory::allocate_raw(std::size_t bytes, std::string name) {
  const std::size_t padded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  if (used_ + padded > capacity_)
    throw OutOfMemory("global memory exhausted: " + name + " needs " +
                      std::to_string(bytes) + " bytes, " +
                      std::to_string(capacity_ - used_) + " available");
  auto alloc = std::make_unique<detail::Allocation>();
  alloc->name = std::move(name);
  alloc->address = next_address_;
  alloc->bytes = bytes;
  alloc->storage = std::make_unique<std::byte[]>(bytes == 0 ? 1 : bytes);
  next_address_ += padded;
  used_ += padded;
  allocations_.push_back(std::move(alloc));
  return allocations_.back().get();
}

detail::Allocation* ConstantMemory::allocate_raw(std::size_t bytes, std::string name) {
  if (used_ + bytes > capacity_)
    throw ConstantMemoryOverflow(
        "constant memory exhausted: " + name + " needs " + std::to_string(bytes) +
        " bytes, " + std::to_string(capacity_ - used_) + " of " +
        std::to_string(capacity_) + " available");
  auto alloc = std::make_unique<detail::Allocation>();
  alloc->name = std::move(name);
  alloc->address = used_;
  alloc->bytes = bytes;
  alloc->storage = std::make_unique<std::byte[]>(bytes == 0 ? 1 : bytes);
  used_ += bytes;
  allocations_.push_back(std::move(alloc));
  return allocations_.back().get();
}

}  // namespace polyeval::simt
