#pragma once

/// \file memory.hpp
/// Device memory spaces of the simulator.
///
/// GlobalMemory hands out typed buffers with contiguous *device addresses*
/// so the engine can group warp accesses into 128-byte transactions (the
/// coalescing analysis of sections 3.1/3.3).  ConstantMemory enforces the
/// 64 KB budget whose exhaustion ends the paper's tables at 1536 monomials.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace polyeval::simt {

class DeviceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Global-memory exhaustion.
class OutOfMemory : public DeviceError {
 public:
  using DeviceError::DeviceError;
};

/// Constant-memory exhaustion -- the failure mode of section 4's attempt
/// to run 2048 monomials.
class ConstantMemoryOverflow : public DeviceError {
 public:
  using DeviceError::DeviceError;
};

/// Invalid launch configuration.
class LaunchError : public DeviceError {
 public:
  using DeviceError::DeviceError;
};

namespace detail {

/// One allocation: storage plus its simulated device address range.
struct Allocation {
  std::string name;
  std::uint64_t address = 0;
  std::size_t bytes = 0;
  std::unique_ptr<std::byte[]> storage;
};

}  // namespace detail

template <class T>
class GlobalBuffer;
template <class T>
class ConstantBuffer;

/// Arena of device global memory.  Allocations are aligned to 256 bytes
/// (cudaMalloc alignment), so a buffer's coalescing behaviour depends only
/// on the access pattern, never on placement luck.
class GlobalMemory {
 public:
  explicit GlobalMemory(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  template <class T>
  [[nodiscard]] GlobalBuffer<T> allocate(std::size_t count, std::string name);

  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Resolve a device address to its owning allocation, or nullptr when
  /// it falls in alignment padding or unmapped space.  Addresses are
  /// handed out monotonically, so this is a binary search -- cheap
  /// enough for the auditor to name every finding's buffer.
  [[nodiscard]] const detail::Allocation* find(std::uint64_t address) const noexcept;

  /// Release every allocation (buffers become dangling, as after device
  /// reset; only used between experiments).
  void reset() {
    allocations_.clear();
    used_ = 0;
    next_address_ = kBaseAddress;
  }

 private:
  static constexpr std::uint64_t kBaseAddress = 0x700000000ull;
  static constexpr std::uint64_t kAlignment = 256;

  detail::Allocation* allocate_raw(std::size_t bytes, std::string name);

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t next_address_ = kBaseAddress;
  std::vector<std::unique_ptr<detail::Allocation>> allocations_;
};

/// Typed view of a global-memory allocation.  Element access from kernels
/// goes through ThreadContext (which records transactions); host access
/// goes through Device::upload/download (which records PCIe traffic).
template <class T>
class GlobalBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "device buffers require trivially copyable element types");

 public:
  GlobalBuffer() = default;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool valid() const noexcept { return alloc_ != nullptr; }
  [[nodiscard]] std::uint64_t device_address() const noexcept { return alloc_->address; }
  [[nodiscard]] const std::string& name() const noexcept { return alloc_->name; }

  /// Raw storage; reserved for the engine and the Device transfer API.
  [[nodiscard]] T* raw() const noexcept {
    return reinterpret_cast<T*>(alloc_->storage.get());
  }

 private:
  friend class GlobalMemory;
  explicit GlobalBuffer(detail::Allocation* alloc, std::size_t count)
      : alloc_(alloc), count_(count) {}

  detail::Allocation* alloc_ = nullptr;
  std::size_t count_ = 0;
};

template <class T>
GlobalBuffer<T> GlobalMemory::allocate(std::size_t count, std::string name) {
  return GlobalBuffer<T>(allocate_raw(count * sizeof(T), std::move(name)), count);
}

/// The 64 KB constant-memory space.  Reads are served by the constant
/// cache with broadcast, so only read counts (not transactions) are kept.
class ConstantMemory {
 public:
  explicit ConstantMemory(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  template <class T>
  [[nodiscard]] ConstantBuffer<T> allocate(std::size_t count, std::string name);

  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return capacity_ - used_; }

  void reset() {
    allocations_.clear();
    used_ = 0;
  }

 private:
  detail::Allocation* allocate_raw(std::size_t bytes, std::string name);

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::vector<std::unique_ptr<detail::Allocation>> allocations_;
};

/// Typed view of a constant-memory allocation.
template <class T>
class ConstantBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ConstantBuffer() = default;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool valid() const noexcept { return alloc_ != nullptr; }
  [[nodiscard]] const std::string& name() const noexcept { return alloc_->name; }
  [[nodiscard]] T* raw() const noexcept {
    return reinterpret_cast<T*>(alloc_->storage.get());
  }

 private:
  friend class ConstantMemory;
  explicit ConstantBuffer(detail::Allocation* alloc, std::size_t count)
      : alloc_(alloc), count_(count) {}

  detail::Allocation* alloc_ = nullptr;
  std::size_t count_ = 0;
};

template <class T>
ConstantBuffer<T> ConstantMemory::allocate(std::size_t count, std::string name) {
  return ConstantBuffer<T>(allocate_raw(count * sizeof(T), std::move(name)), count);
}

/// Type-erased host<->device copy: the unit of asynchronous transfer the
/// stream subsystem (stream.hpp) issues.  Built from a typed buffer and
/// a host span up front -- so a stream can hold a uniform command record
/// without templates or allocation -- and executed as one memcpy when
/// the command runs.  The host span must stay valid until the copy has
/// executed (for eager streams, until the enqueue call returns; the
/// cudaMemcpyAsync staging-buffer contract).
struct CopyCommand {
  std::byte* dst = nullptr;
  const std::byte* src = nullptr;
  std::size_t bytes = 0;
  bool to_device = false;
  /// Device address of the buffer side, so an attached access auditor
  /// can register h2d copies as host initialization.
  std::uint64_t device_address = 0;

  template <class T>
  [[nodiscard]] static CopyCommand h2d(const GlobalBuffer<T>& dst,
                                       std::span<const T> src) {
    if (src.size() > dst.size())
      throw DeviceError("CopyCommand: host range exceeds device buffer " +
                        dst.name());
    return {reinterpret_cast<std::byte*>(dst.raw()),
            reinterpret_cast<const std::byte*>(src.data()), src.size_bytes(), true,
            dst.device_address()};
  }

  template <class T>
  [[nodiscard]] static CopyCommand d2h(const GlobalBuffer<T>& src,
                                       std::span<T> dst) {
    if (dst.size() > src.size())
      throw DeviceError("CopyCommand: host range exceeds device buffer " +
                        src.name());
    return {reinterpret_cast<std::byte*>(dst.data()),
            reinterpret_cast<const std::byte*>(src.raw()), dst.size_bytes(), false,
            src.device_address()};
  }

  void run() const {
    if (bytes > 0) std::memcpy(dst, src, bytes);
  }
};

}  // namespace polyeval::simt
