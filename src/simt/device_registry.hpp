#pragma once

/// \file device_registry.hpp
/// Registry of simulated devices for in-process multi-device sharding.
///
/// The paper's lineage scales by distributing independent points or
/// paths over accelerators (the MPI-era manager/worker layout); this
/// registry is that layout's device side, in-process: N independent
/// `Device` instances, each with its own memory spaces, launch log,
/// engine scratch and -- crucially -- its own host worker pool, so
/// launches on different devices proceed concurrently without sharing a
/// single pool's submission lock.
///
/// Device is intentionally non-movable (it owns mutexes and worker
/// threads), so the registry holds stable unique_ptr slots.

#include <memory>
#include <stdexcept>
#include <vector>

#include "simt/device.hpp"

namespace polyeval::simt {

class DeviceRegistry {
 public:
  /// Creates `count` devices of identical spec, each with its own
  /// `workers_per_device`-thread host pool.  The per-device pool is the
  /// shard's compute resource: keep count * (workers_per_device + 1)
  /// near the host core count (the +1 is the shard's manager thread,
  /// which participates in its device pool's drains).
  explicit DeviceRegistry(unsigned count, DeviceSpec spec = DeviceSpec::tesla_c2050(),
                          unsigned workers_per_device = 1) {
    if (count == 0) throw std::invalid_argument("DeviceRegistry: zero devices");
    devices_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
      devices_.push_back(std::make_unique<Device>(spec, workers_per_device));
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(devices_.size());
  }
  [[nodiscard]] Device& device(unsigned i) { return *devices_[i]; }
  [[nodiscard]] const Device& device(unsigned i) const { return *devices_[i]; }

  /// Clear every device's launch log (capacity kept, as Device::clear_log).
  void clear_logs() {
    for (auto& d : devices_) d->clear_log();
  }

  /// Start a fresh modeled async timeline on every device: shard
  /// backends that pipeline through streams (stream.hpp) share each
  /// device's engine clocks, and a scaling bench comparing per-shard
  /// timelines wants them all rebased to zero together.
  void reset_engine_clocks() {
    for (auto& d : devices_) d->engine_clocks().reset();
  }

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace polyeval::simt
