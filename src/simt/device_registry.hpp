#pragma once

/// \file device_registry.hpp
/// Registry of simulated devices for in-process multi-device sharding.
///
/// The paper's lineage scales by distributing independent points or
/// paths over accelerators (the MPI-era manager/worker layout); this
/// registry is that layout's device side, in-process: N independent
/// `Device` instances, each with its own memory spaces, launch log,
/// engine scratch and -- crucially -- its own host worker pool, so
/// launches on different devices proceed concurrently without sharing a
/// single pool's submission lock.
///
/// Fleets need not be uniform: the per-spec constructor builds one
/// device per `DeviceSpec`, and `throughput_weight()` exposes each
/// device's modeled speed (shader clock x cores, normalized so the
/// fastest device weighs 1.0) -- the quantity every
/// heterogeneity-aware placement decision in the stack divides by.
/// Weights only ever shape PLACEMENT and the modeled clock; a point's
/// arithmetic is device-independent, so no weight can move an endpoint
/// bit.
///
/// Device is intentionally non-movable (it owns mutexes and worker
/// threads), so the registry holds stable unique_ptr slots.

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "simt/device.hpp"

namespace polyeval::simt {

class DeviceRegistry {
 public:
  /// Creates `count` devices of identical spec, each with its own
  /// `workers_per_device`-thread host pool.  The per-device pool is the
  /// shard's compute resource: keep count * (workers_per_device + 1)
  /// near the host core count (the +1 is the shard's manager thread,
  /// which participates in its device pool's drains).
  explicit DeviceRegistry(unsigned count, DeviceSpec spec = DeviceSpec::tesla_c2050(),
                          unsigned workers_per_device = 1)
      : DeviceRegistry(std::vector<DeviceSpec>(count, spec), workers_per_device) {}

  /// Heterogeneous fleet: one device per spec, in order.  Mixed specs
  /// are first-class -- the schedulers read `throughput_weight()` so a
  /// half-clock card is given half the work instead of dragging the
  /// fleet's makespan to its pace.
  explicit DeviceRegistry(std::vector<DeviceSpec> specs,
                          unsigned workers_per_device = 1) {
    if (specs.empty()) throw std::invalid_argument("DeviceRegistry: zero devices");
    devices_.reserve(specs.size());
    for (auto& spec : specs)
      devices_.push_back(std::make_unique<Device>(std::move(spec), workers_per_device));
    double max_raw = 0.0;
    weights_.reserve(devices_.size());
    for (const auto& d : devices_) {
      const double raw = d->spec().modeled_throughput();
      if (!(raw > 0.0))
        throw std::invalid_argument("DeviceRegistry: spec with zero throughput");
      weights_.push_back(raw);
      max_raw = std::max(max_raw, raw);
    }
    for (double& w : weights_) w /= max_raw;
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(devices_.size());
  }
  [[nodiscard]] Device& device(unsigned i) { return *devices_[i]; }
  [[nodiscard]] const Device& device(unsigned i) const { return *devices_[i]; }
  [[nodiscard]] const DeviceSpec& spec(unsigned i) const {
    return devices_[i]->spec();
  }

  /// Modeled relative speed of device `d`: shader clock x core count,
  /// normalized so the fastest device in the fleet weighs exactly 1.0.
  /// Monotone in clock x cores, so weight ordering always matches the
  /// spec ordering.  The measured refinement (tune::fleet_weights)
  /// replaces this estimate with 1 / measured-kernel-us once the
  /// autotuner has probed every spec in the fleet.
  [[nodiscard]] double throughput_weight(unsigned d) const {
    return weights_[d];
  }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

  /// Whether any two devices differ in spec (the cue for the weighted
  /// schedules; a uniform fleet keeps the historical balanced paths).
  [[nodiscard]] bool heterogeneous() const {
    for (unsigned i = 1; i < size(); ++i)
      if (!(devices_[i]->spec() == devices_[0]->spec())) return true;
    return false;
  }

  /// Clear every device's launch log (capacity kept, as Device::clear_log).
  void clear_logs() {
    for (auto& d : devices_) d->clear_log();
  }

  /// Start a fresh modeled async timeline on every device: shard
  /// backends that pipeline through streams (stream.hpp) share each
  /// device's engine clocks, and a scaling bench comparing per-shard
  /// timelines wants them all rebased to zero together.
  void reset_engine_clocks() {
    for (auto& d : devices_) d->engine_clocks().reset();
  }

 private:
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<double> weights_;  ///< modeled, fastest == 1.0
};

}  // namespace polyeval::simt
