#pragma once

/// \file device.hpp
/// The simulated GPU: owns the memory spaces, the host worker pool, and
/// the launch log.  Mirrors the slice of the CUDA runtime the paper's
/// implementation uses (cudaMalloc, __constant__ uploads, cudaMemcpy,
/// kernel launches).

#include <span>

#include "simt/kernel.hpp"
#include "simt/thread_pool.hpp"

namespace polyeval::simt {

/// Modeled readiness of the device's three asynchronous engines: the
/// compute engine (kernels serialize on it device-wide, the Fermi
/// convention) and the two DMA copy engines (the C2050 has one per
/// direction, so an upload, a download and a kernel can all be in
/// flight at once -- the overlap the stream subsystem models).  Streams
/// of one device share these clocks; a command starts no earlier than
/// its engine is free.  Purely modeled state: host execution is not
/// gated on it.
struct AsyncEngineClocks {
  double compute_ready_us = 0.0;
  double h2d_ready_us = 0.0;
  double d2h_ready_us = 0.0;

  /// Start a fresh modeled timeline (between instrumented regions).
  void reset() noexcept { *this = {}; }
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::tesla_c2050(), unsigned host_workers = 0)
      : spec_(std::move(spec)),
        global_(spec_.global_memory_bytes),
        constant_(spec_.constant_memory_bytes - spec_.constant_reserved_bytes),
        pool_(host_workers) {
    log_.kernels.reserve(64);
  }

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  // -- allocation -------------------------------------------------------
  template <class T>
  [[nodiscard]] GlobalBuffer<T> alloc_global(std::size_t count, std::string name) {
    return global_.allocate<T>(count, std::move(name));
  }
  template <class T>
  [[nodiscard]] ConstantBuffer<T> alloc_constant(std::size_t count, std::string name) {
    return constant_.allocate<T>(count, std::move(name));
  }

  [[nodiscard]] std::size_t constant_bytes_used() const noexcept {
    return constant_.used();
  }
  [[nodiscard]] std::size_t constant_bytes_remaining() const noexcept {
    return constant_.remaining();
  }
  [[nodiscard]] std::size_t global_bytes_used() const noexcept { return global_.used(); }

  /// The global-memory arena itself; the auditor resolves finding
  /// addresses to allocation names through it.
  [[nodiscard]] const GlobalMemory& global_memory() const noexcept { return global_; }

  /// Release all device allocations (between experiments).
  void reset_memory() {
    global_.reset();
    constant_.reset();
    if (audit_ != nullptr) audit_->on_memory_reset();
  }

  // -- access auditing ---------------------------------------------------
  /// Attach an access auditor: every subsequent launch through this
  /// device runs audited (serially), and host-side initialization
  /// (upload / fill / h2d stream copies) is reported as provenance.
  /// Pass nullptr to detach.  Attach the auditor *before* constructing
  /// evaluators so construction-time uploads register as host-init.
  void set_audit(AccessAudit* audit) noexcept { audit_ = audit; }
  [[nodiscard]] AccessAudit* audit() const noexcept { return audit_; }

  // -- host <-> device transfers (tracked as PCIe traffic) --------------
  template <class T>
  void upload(const GlobalBuffer<T>& buf, std::span<const T> host) {
    std::copy(host.begin(), host.end(), buf.raw());
    log_.transfers.bytes_to_device += host.size_bytes();
    ++log_.transfers.transfers_to_device;
    if (audit_ != nullptr)
      audit_->on_host_write(buf.device_address(), host.size_bytes());
  }

  template <class T>
  void download(const GlobalBuffer<T>& buf, std::span<T> host) {
    std::copy_n(buf.raw(), host.size(), host.begin());
    log_.transfers.bytes_from_device += host.size_bytes();
    ++log_.transfers.transfers_from_device;
  }

  /// Fill a buffer device-side (cudaMemset analogue; not PCIe traffic).
  template <class T>
  void fill(const GlobalBuffer<T>& buf, const T& value) {
    std::fill_n(buf.raw(), buf.size(), value);
    if (audit_ != nullptr)
      audit_->on_host_write(buf.device_address(), buf.size() * sizeof(T));
  }

  template <class T>
  void upload_constant(const ConstantBuffer<T>& buf, std::span<const T> host) {
    std::copy(host.begin(), host.end(), buf.raw());
    log_.transfers.bytes_to_device += host.size_bytes();
    ++log_.transfers.transfers_to_device;
  }

  /// Transfer bookkeeping for a stream-issued async copy (the stream
  /// executes the memcpy itself): async traffic stays visible in the
  /// device-wide log alongside the synchronous upload/download calls.
  void note_transfer(bool to_device, std::size_t bytes) noexcept {
    if (to_device) {
      log_.transfers.bytes_to_device += bytes;
      ++log_.transfers.transfers_to_device;
    } else {
      log_.transfers.bytes_from_device += bytes;
      ++log_.transfers.transfers_from_device;
    }
  }

  // -- execution --------------------------------------------------------
  /// Launch through the device-owned engine scratch: after warm-up,
  /// repeated launches of same-shaped kernels do not allocate.
  KernelStats launch(const Kernel& kernel, const LaunchConfig& cfg) {
    if (audit_ != nullptr && cfg.audit == nullptr) {
      LaunchConfig audited = cfg;
      audited.audit = audit_;
      KernelStats stats = run_kernel(kernel, audited, spec_, pool_, scratch_);
      log_.kernels.push_back(stats);
      return stats;
    }
    KernelStats stats = run_kernel(kernel, cfg, spec_, pool_, scratch_);
    log_.kernels.push_back(stats);
    return stats;
  }

  [[nodiscard]] const LaunchLog& log() const noexcept { return log_; }
  void clear_log() { log_.clear(); }

  /// Modeled engine-readiness clocks shared by this device's streams
  /// (see stream.hpp).  Reset them when starting a fresh modeled
  /// timeline: `device.engine_clocks().reset()`.
  [[nodiscard]] AsyncEngineClocks& engine_clocks() noexcept { return engines_; }
  [[nodiscard]] const AsyncEngineClocks& engine_clocks() const noexcept {
    return engines_;
  }
  /// Pre-size the launch log: callers that issue a known number of
  /// launches per instrumented region (a sharded evaluator claiming work
  /// chunks) reserve once so the log's push_back stays off the allocator
  /// however the chunks fall.
  void reserve_log(std::size_t kernels) { log_.kernels.reserve(kernels); }

 private:
  DeviceSpec spec_;
  GlobalMemory global_;
  ConstantMemory constant_;
  ThreadPool pool_;
  EngineScratch scratch_;
  LaunchLog log_;
  AsyncEngineClocks engines_;
  AccessAudit* audit_ = nullptr;
};

}  // namespace polyeval::simt
