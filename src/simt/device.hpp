#pragma once

/// \file device.hpp
/// The simulated GPU: owns the memory spaces, the host worker pool, and
/// the launch log.  Mirrors the slice of the CUDA runtime the paper's
/// implementation uses (cudaMalloc, __constant__ uploads, cudaMemcpy,
/// kernel launches).

#include <span>

#include "simt/kernel.hpp"
#include "simt/thread_pool.hpp"

namespace polyeval::simt {

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::tesla_c2050(), unsigned host_workers = 0)
      : spec_(std::move(spec)),
        global_(spec_.global_memory_bytes),
        constant_(spec_.constant_memory_bytes - spec_.constant_reserved_bytes),
        pool_(host_workers) {
    log_.kernels.reserve(64);
  }

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  // -- allocation -------------------------------------------------------
  template <class T>
  [[nodiscard]] GlobalBuffer<T> alloc_global(std::size_t count, std::string name) {
    return global_.allocate<T>(count, std::move(name));
  }
  template <class T>
  [[nodiscard]] ConstantBuffer<T> alloc_constant(std::size_t count, std::string name) {
    return constant_.allocate<T>(count, std::move(name));
  }

  [[nodiscard]] std::size_t constant_bytes_used() const noexcept {
    return constant_.used();
  }
  [[nodiscard]] std::size_t constant_bytes_remaining() const noexcept {
    return constant_.remaining();
  }
  [[nodiscard]] std::size_t global_bytes_used() const noexcept { return global_.used(); }

  /// Release all device allocations (between experiments).
  void reset_memory() {
    global_.reset();
    constant_.reset();
  }

  // -- host <-> device transfers (tracked as PCIe traffic) --------------
  template <class T>
  void upload(const GlobalBuffer<T>& buf, std::span<const T> host) {
    std::copy(host.begin(), host.end(), buf.raw());
    log_.transfers.bytes_to_device += host.size_bytes();
    ++log_.transfers.transfers_to_device;
  }

  template <class T>
  void download(const GlobalBuffer<T>& buf, std::span<T> host) {
    std::copy_n(buf.raw(), host.size(), host.begin());
    log_.transfers.bytes_from_device += host.size_bytes();
    ++log_.transfers.transfers_from_device;
  }

  /// Fill a buffer device-side (cudaMemset analogue; not PCIe traffic).
  template <class T>
  void fill(const GlobalBuffer<T>& buf, const T& value) {
    std::fill_n(buf.raw(), buf.size(), value);
  }

  template <class T>
  void upload_constant(const ConstantBuffer<T>& buf, std::span<const T> host) {
    std::copy(host.begin(), host.end(), buf.raw());
    log_.transfers.bytes_to_device += host.size_bytes();
    ++log_.transfers.transfers_to_device;
  }

  // -- execution --------------------------------------------------------
  /// Launch through the device-owned engine scratch: after warm-up,
  /// repeated launches of same-shaped kernels do not allocate.
  KernelStats launch(const Kernel& kernel, const LaunchConfig& cfg) {
    KernelStats stats = run_kernel(kernel, cfg, spec_, pool_, scratch_);
    log_.kernels.push_back(stats);
    return stats;
  }

  [[nodiscard]] const LaunchLog& log() const noexcept { return log_; }
  void clear_log() { log_.clear(); }
  /// Pre-size the launch log: callers that issue a known number of
  /// launches per instrumented region (a sharded evaluator claiming work
  /// chunks) reserve once so the log's push_back stays off the allocator
  /// however the chunks fall.
  void reserve_log(std::size_t kernels) { log_.kernels.reserve(kernels); }

 private:
  DeviceSpec spec_;
  GlobalMemory global_;
  ConstantMemory constant_;
  ThreadPool pool_;
  EngineScratch scratch_;
  LaunchLog log_;
};

}  // namespace polyeval::simt
