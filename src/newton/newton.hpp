#pragma once

/// \file newton.hpp
/// Newton's method over any evaluator (CPU reference or the GPU
/// pipeline) and any precision -- the corrector the paper accelerates,
/// and the vehicle of its "quality up" question: with enough parallel
/// cores, extended precision costs no extra wall-clock time.

#include <concepts>
#include <span>
#include <vector>

#include "linalg/lu.hpp"
#include "poly/eval_result.hpp"

namespace polyeval::newton {

/// Anything that can evaluate a system and its Jacobian at a point.
template <class E, class S>
concept Evaluator = requires(E e, std::span<const cplx::Complex<S>> x,
                             poly::EvalResult<S>& out) {
  e.evaluate(x, out);
  { e.dimension() } -> std::convertible_to<unsigned>;
};

struct NewtonOptions {
  unsigned max_iterations = 20;
  /// Stop when the residual max-norm falls below this.
  double residual_tolerance = 1e-12;
  /// Stop when the update max-norm falls below this.
  double update_tolerance = 0.0;
};

template <prec::RealScalar S>
struct NewtonResult {
  bool converged = false;
  bool singular = false;  ///< Jacobian became singular
  unsigned iterations = 0;
  double final_residual = 0.0;
  double final_update = 0.0;
  std::vector<cplx::Complex<S>> solution;
  std::vector<double> residual_history;  ///< per-iteration residual norms
  std::vector<double> update_history;    ///< per-iteration |dx| norms
};

/// Run Newton iterations from x0.
template <prec::RealScalar S, class Eval>
  requires Evaluator<Eval, S>
NewtonResult<S> refine(Eval& evaluator, std::span<const cplx::Complex<S>> x0,
                       const NewtonOptions& options = {}) {
  using C = cplx::Complex<S>;
  const unsigned n = evaluator.dimension();

  NewtonResult<S> result;
  result.solution.assign(x0.begin(), x0.end());
  poly::EvalResult<S> eval(n);

  for (unsigned it = 0; it < options.max_iterations; ++it) {
    evaluator.evaluate(std::span<const C>(result.solution), eval);
    result.final_residual = linalg::max_norm_d<S>(eval.values);
    result.residual_history.push_back(result.final_residual);
    if (result.final_residual <= options.residual_tolerance) {
      result.converged = true;
      return result;
    }

    auto jac = linalg::Matrix<S>::from_row_major(n, n, eval.jacobian);
    auto delta = linalg::lu_solve(std::move(jac), std::span<const C>(eval.values));
    if (!delta) {
      result.singular = true;
      return result;
    }
    for (unsigned i = 0; i < n; ++i) result.solution[i] -= (*delta)[i];
    ++result.iterations;

    result.final_update = linalg::max_norm_d<S>(*delta);
    result.update_history.push_back(result.final_update);
    if (options.update_tolerance > 0.0 && result.final_update <= options.update_tolerance) {
      // Converged in the update sense; recompute the residual for the
      // caller before returning.
      evaluator.evaluate(std::span<const C>(result.solution), eval);
      result.final_residual = linalg::max_norm_d<S>(eval.values);
      result.residual_history.push_back(result.final_residual);
      result.converged = true;
      return result;
    }
  }

  // Report the state after the final iteration.
  evaluator.evaluate(std::span<const C>(result.solution), eval);
  result.final_residual = linalg::max_norm_d<S>(eval.values);
  result.residual_history.push_back(result.final_residual);
  result.converged = result.final_residual <= options.residual_tolerance;
  return result;
}

/// Widen a point to a higher precision (double -> double-double -> ...),
/// the first step of a quality-up refinement.
template <prec::RealScalar To, prec::RealScalar From>
[[nodiscard]] std::vector<cplx::Complex<To>> widen_point(
    std::span<const cplx::Complex<From>> x) {
  std::vector<cplx::Complex<To>> out;
  out.reserve(x.size());
  for (const auto& z : x)
    out.push_back(cplx::Complex<To>::from_double(z.to_double()));
  return out;
}

}  // namespace polyeval::newton
