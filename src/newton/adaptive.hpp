#pragma once

/// \file adaptive.hpp
/// Adaptive-precision Newton refinement: the quality-up mechanism made
/// automatic.  Runs Newton in hardware doubles until the residual either
/// meets the target or stagnates at the precision's noise floor, then
/// escalates double -> double-double -> quad-double, exactly the ladder
/// the paper buys GPU cycles for ("a couple or perhaps just one solution
/// path may require extended multiprecision arithmetic").

#include <limits>
#include <string_view>

#include "ad/cpu_evaluator.hpp"
#include "newton/newton.hpp"

namespace polyeval::newton {

enum class PrecisionLevel { kDouble, kDoubleDouble, kQuadDouble };

[[nodiscard]] constexpr std::string_view to_string(PrecisionLevel level) noexcept {
  switch (level) {
    case PrecisionLevel::kDouble:
      return "double";
    case PrecisionLevel::kDoubleDouble:
      return "double-double";
    case PrecisionLevel::kQuadDouble:
      return "quad-double";
  }
  return "?";
}

struct AdaptiveOptions {
  /// Stop escalating once the residual max-norm is below this.
  double target_residual = 1e-24;
  /// Newton iterations allowed at each precision level.
  unsigned iterations_per_level = 12;
  /// A step counts as stagnant when the residual shrinks by less than
  /// this factor; two stagnant steps end the level.
  double stagnation_factor = 0.5;
  /// Highest precision to try.
  PrecisionLevel max_level = PrecisionLevel::kQuadDouble;
};

struct AdaptiveResult {
  bool converged = false;
  PrecisionLevel level_reached = PrecisionLevel::kDouble;
  double final_residual = 0.0;
  /// Solution in the highest precision reached, stored as quad-double
  /// (lossless for the lower levels).
  std::vector<cplx::Complex<prec::QuadDouble>> solution;
  /// Residual after each level, in escalation order.
  std::vector<double> residual_per_level;
};

namespace detail {

/// Newton with stagnation detection at one precision level.
template <prec::RealScalar S, class Eval>
NewtonResult<S> refine_until_floor(Eval& evaluator,
                                   std::span<const cplx::Complex<S>> x0,
                                   const AdaptiveOptions& options) {
  using C = cplx::Complex<S>;
  NewtonResult<S> best;
  best.solution.assign(x0.begin(), x0.end());

  poly::EvalResult<S> eval(evaluator.dimension());
  unsigned stagnant = 0;
  double last_residual = std::numeric_limits<double>::infinity();
  for (unsigned it = 0; it < options.iterations_per_level; ++it) {
    evaluator.evaluate(std::span<const C>(best.solution), eval);
    best.final_residual = linalg::max_norm_d<S>(eval.values);
    best.residual_history.push_back(best.final_residual);
    if (best.final_residual <= options.target_residual) {
      best.converged = true;
      return best;
    }
    if (best.final_residual > last_residual * options.stagnation_factor) {
      if (++stagnant >= 2) return best;  // at the level's noise floor
    } else {
      stagnant = 0;
    }
    last_residual = best.final_residual;

    auto jac = linalg::Matrix<S>::from_row_major(evaluator.dimension(),
                                                 evaluator.dimension(), eval.jacobian);
    auto delta = linalg::lu_solve(std::move(jac), std::span<const C>(eval.values));
    if (!delta) {
      best.singular = true;
      return best;
    }
    for (std::size_t i = 0; i < best.solution.size(); ++i)
      best.solution[i] -= (*delta)[i];
    ++best.iterations;
  }
  evaluator.evaluate(std::span<const C>(best.solution), eval);
  best.final_residual = linalg::max_norm_d<S>(eval.values);
  best.residual_history.push_back(best.final_residual);
  best.converged = best.final_residual <= options.target_residual;
  return best;
}

}  // namespace detail

/// Refine x0 toward a root of the system, escalating precision as needed.
[[nodiscard]] inline AdaptiveResult adaptive_refine(
    const poly::PolynomialSystem& system,
    std::span<const cplx::Complex<double>> x0, const AdaptiveOptions& options = {}) {
  using prec::DoubleDouble;
  using prec::QuadDouble;
  AdaptiveResult result;

  // Level 1: hardware doubles.
  ad::CpuEvaluator<double> eval_d(system);
  const auto r_d = detail::refine_until_floor<double>(eval_d, x0, options);
  result.level_reached = PrecisionLevel::kDouble;
  result.final_residual = r_d.final_residual;
  result.residual_per_level.push_back(r_d.final_residual);
  result.solution.clear();
  for (const auto& z : r_d.solution)
    result.solution.emplace_back(QuadDouble(z.re()), QuadDouble(z.im()));
  if (r_d.converged || options.max_level == PrecisionLevel::kDouble) {
    result.converged = r_d.converged;
    return result;
  }

  // Level 2: double-double.
  ad::CpuEvaluator<DoubleDouble> eval_dd(system);
  std::vector<cplx::Complex<DoubleDouble>> x_dd;
  for (const auto& z : r_d.solution)
    x_dd.emplace_back(DoubleDouble(z.re()), DoubleDouble(z.im()));
  const auto r_dd = detail::refine_until_floor<DoubleDouble>(
      eval_dd, std::span<const cplx::Complex<DoubleDouble>>(x_dd), options);
  result.level_reached = PrecisionLevel::kDoubleDouble;
  result.final_residual = r_dd.final_residual;
  result.residual_per_level.push_back(r_dd.final_residual);
  result.solution.clear();
  for (const auto& z : r_dd.solution)
    result.solution.emplace_back(QuadDouble(z.re()), QuadDouble(z.im()));
  if (r_dd.converged || options.max_level == PrecisionLevel::kDoubleDouble) {
    result.converged = r_dd.converged;
    return result;
  }

  // Level 3: quad-double.
  ad::CpuEvaluator<QuadDouble> eval_qd(system);
  std::vector<cplx::Complex<QuadDouble>> x_qd;
  for (const auto& z : r_dd.solution)
    x_qd.emplace_back(QuadDouble(z.re()), QuadDouble(z.im()));
  const auto r_qd = detail::refine_until_floor<QuadDouble>(
      eval_qd, std::span<const cplx::Complex<QuadDouble>>(x_qd), options);
  result.level_reached = PrecisionLevel::kQuadDouble;
  result.final_residual = r_qd.final_residual;
  result.residual_per_level.push_back(r_qd.final_residual);
  result.solution = r_qd.solution;
  result.converged = r_qd.converged;
  return result;
}

}  // namespace polyeval::newton
