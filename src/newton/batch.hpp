#pragma once

/// \file batch.hpp
/// Batched Newton's method with per-path convergence masks: the
/// corrector of the lockstep path tracker.  Where newton::refine walks
/// one point through evaluate -> residual check -> solve -> update,
/// refine_batch walks a whole active set through the same sequence with
/// every evaluation batched into a single device launch
/// (evaluate_values_range for the residual probes, evaluate_range for
/// the Jacobian steps) and the linear solves looped through a
/// linalg::LuArena.
///
/// Per-path bitwise contract: each path runs EXACTLY newton::refine's
/// arithmetic -- the batched evaluators guarantee per-point independence
/// (one block per point), the values-only probe is bit-identical to a
/// full evaluation's values (build_fused_values_kernel), and LuArena
/// repeats lu_solve's elimination verbatim -- so a path's iterates,
/// residuals and convergence verdicts are independent of which other
/// paths shared its batches.  What the batching buys: paths that
/// converge early drop out of the Jacobian launches (the masks), probes
/// never pay for the n^2 derivative sums a convergence check discards,
/// and every launch carries the whole surviving set.
///
/// Zero allocation: all working storage lives in RefineBatchScratch and
/// the caller's LuArena, sized once via reserve(); steady-state
/// refine_batch calls never touch the allocator.

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/lu.hpp"
#include "newton/newton.hpp"
#include "poly/eval_result.hpp"

namespace polyeval::newton {

/// Anything that can evaluate a batch of points, each at its own
/// parameter value (the homotopy's t, complex so the Cauchy endgame can
/// circle it around 1; ordinary tracking passes real values), with and
/// without the Jacobian -- homotopy::BatchedHomotopy and
/// homotopy::BatchedProjectiveHomotopy are the models.  Both entry
/// points evaluate points[first + i] at ts[first + i] for i in
/// [0, count) with
/// CHUNK-LOCAL outputs: `values` receives count*n entries point-major,
/// `jacobians` count*n*n row-major.  Jacobian calls are bounded by
/// max_batch() (the device batch capacity); values-only calls take any
/// count.
template <class E, class S>
concept BatchEvaluator =
    requires(E e, const std::vector<std::vector<cplx::Complex<S>>>& points,
             std::span<const cplx::Complex<S>> ts, std::size_t first,
             std::size_t count,
             std::span<cplx::Complex<S>> values,
             std::span<cplx::Complex<S>> jacobians) {
      e.evaluate_range(points, ts, first, count, values, jacobians);
      e.evaluate_values_range(points, ts, first, count, values);
      { e.max_batch() } -> std::convertible_to<std::size_t>;
      { e.dimension() } -> std::convertible_to<unsigned>;
    };

/// Per-path outcome of a refine_batch call -- the fields of NewtonResult
/// a tracker consumes, without the per-iteration history vectors.
struct BatchPathStatus {
  bool converged = false;
  bool singular = false;       ///< the path's Jacobian became singular
  unsigned iterations = 0;     ///< Newton updates applied
  double final_residual = 0.0;
  /// Residual of the entry point (newton::refine's residual_history[0])
  /// -- what a diverged endgame polish reports for the pre-polish point.
  double initial_residual = 0.0;
};

/// Working storage of refine_batch, owned by the caller so repeated
/// calls (one per tracker round) stay allocation-free.  Per-path
/// buffers (points, probes) scale with `max_paths`; the O(n^2)
/// Jacobian-step buffers scale only with `jac_chunk` -- the device
/// batch capacity the Jacobian launches walk the survivors in.
template <prec::RealScalar S>
struct RefineBatchScratch {
  using C = cplx::Complex<S>;

  std::vector<std::vector<C>> points;  ///< compacted active iterates
  std::vector<C> ts;                   ///< compacted (complex) parameters
  std::vector<std::size_t> active;     ///< surviving slot ids
  std::vector<C> probe_values;         ///< residual-probe values, count*n
  std::vector<C> values;               ///< Jacobian-chunk values (Newton RHS)
  std::vector<C> jacobians;            ///< Jacobian-chunk matrices, chunk*n*n
  std::vector<C> delta;                ///< Jacobian-chunk updates, chunk*n
  std::vector<unsigned char> singular; ///< per-system lu_solve_batch flags
  std::vector<std::size_t> slot_ids;   ///< compacted caller slot ids (bind_slots)
  std::size_t jac_chunk = 0;           ///< Jacobian-step chunk bound

  /// Cumulative instrumentation, maintained by refine_batch and read
  /// by the observability layer (obs::TrackerMetrics increments are
  /// fed from deltas of these).  Plain integers on purpose: scratch is
  /// single-writer by contract, and the tracker's zero-alloc gate
  /// covers these adds too.
  std::uint64_t calls = 0;               ///< calls that staged device work
  std::uint64_t probe_launches = 0;      ///< values-only residual probes
  std::uint64_t jacobian_launches = 0;   ///< Jacobian chunk launches
  std::uint64_t iterations_applied = 0;  ///< Newton updates across all paths

  /// Size for up to `max_paths` paths of dimension n, Jacobian work
  /// chunked to `jac_chunk` paths per launch.
  void reserve(unsigned n, std::size_t max_paths, std::size_t chunk) {
    jac_chunk = std::min(std::max<std::size_t>(chunk, 1), max_paths);
    points.resize(max_paths);
    for (auto& p : points) p.resize(n);
    ts.resize(max_paths);
    active.reserve(max_paths);
    probe_values.resize(max_paths * std::size_t{n});
    values.resize(jac_chunk * std::size_t{n});
    jacobians.resize(jac_chunk * std::size_t{n} * n);
    delta.resize(jac_chunk * std::size_t{n});
    singular.resize(jac_chunk);
    slot_ids.resize(max_paths);
  }
};

/// Evaluators that need to know which caller-side slot each compacted
/// batch position belongs to (the multi-tenant evaluators of the solve
/// service, which route each point to its own system tables).  The
/// bound span is indexed exactly like the points of the evaluate calls
/// that follow it: bound[first + i] owns points[first + i].
template <class E>
concept SlotAwareEvaluator = requires(E e, std::span<const std::size_t> ids) {
  e.bind_slots(ids);
};

/// Refine x[i] (i in [0, count)) toward a root of e(., ts[i]) with at
/// most options.max_iterations Newton updates each, every stage batched
/// over the still-active subset.  x is updated in place; status[i]
/// mirrors newton::refine's verdict for path i bit for bit.  The arena
/// and scratch must be reserved for at least `count` paths of the
/// evaluator's dimension.  update_tolerance is unsupported (the
/// trackers never set it): its mid-iteration re-evaluation would need a
/// third launch per round for a knob nothing uses.
///
/// `slot_ids` (optional, size >= count when non-empty): caller-side
/// slot of each path, forwarded through compaction to a SlotAwareEvaluator
/// so multi-tenant evaluators can route every point to its own system.
/// `masked` (optional, size >= count when non-empty): nonzero entries
/// are excluded up front -- the cooperative-cancellation mask.  Their
/// status is reset but never probed, and when ALL paths are masked the
/// call returns before any staging or device work, exactly like the
/// count == 0 case (previously only the fully-converged case was free).
template <prec::RealScalar S, class BatchEval>
  requires BatchEvaluator<BatchEval, S>
void refine_batch(BatchEval& e, std::vector<std::vector<cplx::Complex<S>>>& x,
                  std::span<const cplx::Complex<S>> ts, std::size_t count,
                  const NewtonOptions& options, linalg::LuArena<S>& arena,
                  RefineBatchScratch<S>& scratch, std::span<BatchPathStatus> status,
                  std::span<const std::size_t> slot_ids,
                  std::span<const unsigned char> masked) {
  using C = cplx::Complex<S>;
  const unsigned n = e.dimension();
  // An all-false active mask must not pay a launch/upload round: with
  // nothing to refine, return before any staging or device work.
  if (count == 0) return;
  if (options.update_tolerance > 0.0)
    throw std::invalid_argument("refine_batch: update_tolerance unsupported");
  if (x.size() < count || ts.size() < count || status.size() < count)
    throw std::invalid_argument("refine_batch: bad batch spans");
  if (!slot_ids.empty() && slot_ids.size() < count)
    throw std::invalid_argument("refine_batch: bad slot_ids span");
  if (!masked.empty() && masked.size() < count)
    throw std::invalid_argument("refine_batch: bad mask span");
  const std::size_t chunk =
      std::min({scratch.jac_chunk, arena.slots(), e.max_batch()});
  if (arena.dimension() != n || chunk == 0 || scratch.points.size() < count)
    throw std::invalid_argument("refine_batch: arena/scratch too small");

  scratch.active.clear();
  for (std::size_t i = 0; i < count; ++i) {
    status[i] = {};
    if (!masked.empty() && masked[i]) continue;
    scratch.active.push_back(i);
  }
  // All paths masked out (mid-round cancellation): as free as count == 0.
  if (scratch.active.empty()) return;
  ++scratch.calls;

  // A compacted launch over `ids`: copy each surviving iterate (and its
  // parameter) into slot j of the scratch batch, and re-bind the
  // compacted slot ids on slot-aware evaluators.
  const auto compact = [&](const std::vector<std::size_t>& ids) {
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const auto& src = x[ids[j]];
      std::copy(src.begin(), src.end(), scratch.points[j].begin());
      scratch.ts[j] = ts[ids[j]];
    }
    if constexpr (SlotAwareEvaluator<BatchEval>) {
      if (!slot_ids.empty()) {
        for (std::size_t j = 0; j < ids.size(); ++j)
          scratch.slot_ids[j] = slot_ids[ids[j]];
        e.bind_slots(
            std::span<const std::size_t>(scratch.slot_ids.data(), ids.size()));
      }
    }
  };

  for (unsigned it = 0; it <= options.max_iterations; ++it) {
    if (scratch.active.empty()) break;

    // Residual probe: values only, over the whole active set.
    const std::size_t a = scratch.active.size();
    compact(scratch.active);
    e.evaluate_values_range(scratch.points, std::span<const C>(scratch.ts), 0, a,
                            std::span<C>(scratch.probe_values));
    ++scratch.probe_launches;

    // Convergence masks: retire satisfied paths in place.
    std::size_t keep = 0;
    for (std::size_t j = 0; j < a; ++j) {
      const std::size_t i = scratch.active[j];
      const auto vals =
          std::span<const C>(scratch.probe_values).subspan(j * n, n);
      const double residual = linalg::max_norm_d<S>(vals);
      status[i].final_residual = residual;
      if (it == 0) status[i].initial_residual = residual;
      if (residual <= options.residual_tolerance) {
        status[i].converged = true;
      } else {
        scratch.active[keep++] = i;
      }
    }
    scratch.active.resize(keep);
    if (it == options.max_iterations || scratch.active.empty()) break;

    // Jacobian step for the survivors, walked in chunks of the scratch
    // capacity: full launch, LU batch, updates.  The full evaluation's
    // values are the Newton right-hand sides (bitwise equal to the
    // probe's).
    const std::size_t s = scratch.active.size();
    compact(scratch.active);
    keep = 0;
    for (std::size_t c0 = 0; c0 < s; c0 += chunk) {
      const std::size_t cc = std::min(chunk, s - c0);
      e.evaluate_range(scratch.points, std::span<const C>(scratch.ts), c0, cc,
                       std::span<C>(scratch.values),
                       std::span<C>(scratch.jacobians));
      linalg::lu_solve_batch(arena, cc, std::span<const C>(scratch.jacobians),
                             std::span<const C>(scratch.values),
                             std::span<C>(scratch.delta),
                             std::span<unsigned char>(scratch.singular));
      ++scratch.jacobian_launches;

      for (std::size_t j = 0; j < cc; ++j) {
        const std::size_t i = scratch.active[c0 + j];
        if (scratch.singular[j]) {
          status[i].singular = true;  // converged stays false, as in refine
          continue;
        }
        for (unsigned v = 0; v < n; ++v) x[i][v] -= scratch.delta[j * n + v];
        ++status[i].iterations;
        ++scratch.iterations_applied;
        scratch.active[keep++] = i;
      }
    }
    scratch.active.resize(keep);
  }
}

/// Legacy spelling without slot ids or a cancellation mask.
template <prec::RealScalar S, class BatchEval>
  requires BatchEvaluator<BatchEval, S>
void refine_batch(BatchEval& e, std::vector<std::vector<cplx::Complex<S>>>& x,
                  std::span<const cplx::Complex<S>> ts, std::size_t count,
                  const NewtonOptions& options, linalg::LuArena<S>& arena,
                  RefineBatchScratch<S>& scratch,
                  std::span<BatchPathStatus> status) {
  refine_batch<S>(e, x, ts, count, options, arena, scratch, status,
                  std::span<const std::size_t>{},
                  std::span<const unsigned char>{});
}

}  // namespace polyeval::newton
