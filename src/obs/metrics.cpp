#include "obs/metrics.hpp"

#include <array>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace polyeval::obs {
namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "counter";  // FloatCounter exposes as counter
    case 2: return "gauge";
    default: return "histogram";
  }
}

/// Prometheus label values escape backslash, double quote and newline.
void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

/// Shortest-ish round-trip double formatting for sample values; whole
/// numbers print without a trailing ".0" so counter samples look like
/// counters.
void write_number(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp << std::setprecision(15) << v;
  os << tmp.str();
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  return resolve(name, Kind::kCounter, {}, {}, help, {}).counter;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label_key,
                                  std::string_view label_value,
                                  std::string_view help) {
  return resolve(name, Kind::kCounter, label_key, label_value, help, {})
      .counter;
}

FloatCounter& MetricsRegistry::float_counter(std::string_view name,
                                             std::string_view help) {
  return resolve(name, Kind::kFloatCounter, {}, {}, help, {}).float_counter;
}

FloatCounter& MetricsRegistry::float_counter(std::string_view name,
                                             std::string_view label_key,
                                             std::string_view label_value,
                                             std::string_view help) {
  return resolve(name, Kind::kFloatCounter, label_key, label_value, help, {})
      .float_counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return resolve(name, Kind::kGauge, {}, {}, help, {}).gauge;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::string_view label_key,
                              std::string_view label_value,
                              std::string_view help) {
  return resolve(name, Kind::kGauge, label_key, label_value, help, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds,
                                      std::string_view help) {
  return *resolve(name, Kind::kHistogram, {}, {}, help, upper_bounds)
              .histogram;
}

MetricsRegistry::Instrument& MetricsRegistry::resolve(
    std::string_view name, Kind kind, std::string_view label_key,
    std::string_view label_value, std::string_view help,
    std::span<const double> bounds) {
  // Fast path: both the family and the labeled instrument exist.
  {
    std::shared_lock lk(mu_);
    auto fit = by_name_.find(name);
    if (fit != by_name_.end()) {
      Family& fam = *fit->second;
      if (fam.kind != kind)
        throw std::logic_error("metric '" + std::string(name) +
                               "' re-registered as a different type");
      auto iit = fam.by_label.find(label_value);
      if (iit != fam.by_label.end()) return *iit->second;
    }
  }

  // Slow path: create the family and/or the instrument.
  std::unique_lock lk(mu_);
  Family* fam = nullptr;
  auto fit = by_name_.find(name);
  if (fit != by_name_.end()) {
    fam = fit->second;
    if (fam->kind != kind)
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered as a different type");
  } else {
    auto owned = std::make_unique<Family>();
    owned->name.assign(name);
    owned->help.assign(help);
    owned->label_key.assign(label_key);
    owned->kind = kind;
    owned->bounds.assign(bounds.begin(), bounds.end());
    fam = owned.get();
    families_.push_back(std::move(owned));
    by_name_.emplace(fam->name, fam);
  }
  auto iit = fam->by_label.find(label_value);
  if (iit != fam->by_label.end()) return *iit->second;
  auto inst = std::make_unique<Instrument>();
  inst->label_value.assign(label_value);
  if (kind == Kind::kHistogram)
    inst->histogram = std::make_unique<Histogram>(
        std::span<const double>(fam->bounds));
  Instrument* raw = inst.get();
  fam->instruments.push_back(std::move(inst));
  fam->by_label.emplace(raw->label_value, raw);
  return *raw;
}

void MetricsRegistry::expose(std::ostream& os) const {
  std::shared_lock lk(mu_);
  for (const auto& fam : families_) {
    if (!fam->help.empty())
      os << "# HELP " << fam->name << ' ' << fam->help << '\n';
    os << "# TYPE " << fam->name << ' '
       << kind_name(static_cast<int>(fam->kind)) << '\n';
    for (const auto& inst : fam->instruments) {
      const bool labeled = !fam->label_key.empty();
      if (fam->kind == Kind::kHistogram) {
        const Histogram& h = *inst->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          cumulative += h.bucket(b);
          os << fam->name << "_bucket{le=\"";
          if (b < h.bounds().size())
            write_number(os, h.bounds()[b]);
          else
            os << "+Inf";
          os << "\"} " << cumulative << '\n';
        }
        os << fam->name << "_sum ";
        write_number(os, h.sum());
        os << '\n' << fam->name << "_count " << h.count() << '\n';
        continue;
      }
      os << fam->name;
      if (labeled) {
        os << '{' << fam->label_key << "=\"";
        write_escaped(os, inst->label_value);
        os << "\"}";
      }
      os << ' ';
      switch (fam->kind) {
        case Kind::kCounter: os << inst->counter.value(); break;
        case Kind::kFloatCounter:
          write_number(os, inst->float_counter.value());
          break;
        case Kind::kGauge: write_number(os, inst->gauge.value()); break;
        case Kind::kHistogram: break;  // handled above
      }
      os << '\n';
    }
  }
}

TrackerMetrics TrackerMetrics::from_registry(MetricsRegistry& r) {
  TrackerMetrics m;
  m.rounds = &r.counter("polyeval_tracker_rounds_total",
                        "lockstep tracker rounds executed");
  m.steps_accepted = &r.counter("polyeval_tracker_steps_accepted_total",
                                "predictor/corrector steps accepted");
  m.steps_rejected = &r.counter("polyeval_tracker_steps_rejected_total",
                                "steps rejected by step control");
  m.endgame_entries = &r.counter("polyeval_endgame_entries_total",
                                 "paths entering the Cauchy endgame");
  m.endgame_retries = &r.counter(
      "polyeval_endgame_retries_total",
      "failed endgame attempts re-armed at half radius");
  m.newton_calls = &r.counter("polyeval_newton_calls_total",
                              "batched Newton (refine_batch) invocations");
  m.newton_iterations =
      &r.counter("polyeval_newton_iterations_total",
                 "Newton updates applied across all paths");
  static constexpr const char* kStatusNames[kStatuses] = {
      "converged", "at_infinity", "stalled", "diverged", "cancelled"};
  for (std::size_t s = 0; s < kStatuses; ++s)
    m.retired_by_status[s] =
        &r.counter("polyeval_paths_retired_total", "status", kStatusNames[s],
                   "paths retired, by final PathStatus");
  static constexpr std::array<double, 6> kIterBounds = {0, 1, 2, 3, 5, 8};
  m.newton_iterations_per_path =
      &r.histogram("polyeval_newton_iterations_per_path", kIterBounds,
                   "Newton iterations per path per corrector call");
  static constexpr std::array<double, 7> kStepBounds = {4,  8,   16,  32,
                                                        64, 128, 256};
  m.path_steps = &r.histogram("polyeval_path_steps", kStepBounds,
                              "accepted steps per path at retirement");
  static constexpr std::array<double, 5> kStreakBounds = {0, 1, 2, 4, 8};
  m.accept_streak =
      &r.histogram("polyeval_accept_streak_at_reject", kStreakBounds,
                   "consecutive-accept streak length when a step was "
                   "rejected");
  return m;
}

}  // namespace polyeval::obs
