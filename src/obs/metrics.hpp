#pragma once

/// \file metrics.hpp
/// The metrics half of the observability layer: a registry of named
/// counters, gauges and fixed-bucket histograms with Prometheus-style
/// text exposition.
///
/// Design contract (the reason this file exists at all, given that
/// `ServiceStats` already counts a few things):
///
///  - **Registration may allocate, observation never does.**  Callers
///    resolve instruments once (`registry.counter("x")` returns a
///    stable reference) and then increment through the handle from hot
///    loops -- a relaxed atomic add, no lock, no lookup, no
///    allocation.  This is what lets the lockstep tracker keep its
///    zero-steady-state-allocation gate while instrumented.
///  - **Instruments are write-concurrent.**  Shard rounds run on pool
///    threads; counters and histograms take relaxed atomic updates
///    from any number of writers.  Exposition is a racy-but-coherent
///    snapshot (each value individually atomic), which is exactly the
///    Prometheus scrape contract.
///  - **Labeled lookups are allocation-free on the hit path.**  The
///    per-kernel families (`launches{kernel="fused_full"}`) are found
///    by transparent `string_view` comparison under a shared lock;
///    only the first observation of a new label value allocates.
///
/// Naming follows the Prometheus conventions: `polyeval_<noun>_<unit>`
/// with a `_total` suffix on counters, labels for the per-kernel /
/// per-status / per-direction splits (see docs/ARCHITECTURE.md,
/// "The observability layer").

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <span>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace polyeval::obs {

/// Monotonically increasing integer counter (relaxed atomic).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Monotonically increasing floating-point counter -- modeled-µs
/// totals accumulate fractional charges, so an integer counter would
/// truncate them.  CAS-add keeps it portable across libstdc++ levels.
class FloatCounter {
 public:
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-write-wins instantaneous value (queue depth, cache hit rate).
class Gauge {
 public:
  void set(double d) noexcept { v_.store(d, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: upper bounds are set at registration and
/// never change, so `observe` is a linear scan over a handful of
/// doubles plus three relaxed atomic adds -- allocation-free.
/// Prometheus `le` semantics: a value lands in the first bucket whose
/// bound is >= value; the implicit last bucket is +Inf.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds)
      : bounds_(upper_bounds.begin(), upper_bounds.end()),
        buckets_(bounds_.size() + 1) {}

  void observe(double v) noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::span<const double> bounds() const noexcept {
    return bounds_;
  }
  /// Count in bucket `i` alone (i == bounds().size() is the +Inf bucket).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Registry of metric families.  A family is one exposition name with
/// one type; it holds either a single unlabeled instrument or a set of
/// instruments keyed by one label value.  References returned by the
/// accessors are stable for the registry's lifetime (instruments live
/// behind unique_ptr).  Re-registering a name with a different type
/// throws std::logic_error -- that is always a programming bug.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help = {});
  Counter& counter(std::string_view name, std::string_view label_key,
                   std::string_view label_value, std::string_view help = {});
  FloatCounter& float_counter(std::string_view name,
                              std::string_view help = {});
  FloatCounter& float_counter(std::string_view name,
                              std::string_view label_key,
                              std::string_view label_value,
                              std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view label_key,
               std::string_view label_value, std::string_view help = {});
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds,
                       std::string_view help = {});

  /// Prometheus text exposition (one `# TYPE` line per family, then
  /// one sample line per instrument; histograms expand into
  /// `_bucket{le=...}` / `_sum` / `_count`).  Safe to call while
  /// writers are incrementing.
  void expose(std::ostream& os) const;

 private:
  enum class Kind : unsigned char { kCounter, kFloatCounter, kGauge,
                                    kHistogram };

  struct Instrument {
    std::string label_value;  ///< empty for the unlabeled singleton
    Counter counter;
    FloatCounter float_counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    std::string label_key;  ///< empty when the family is unlabeled
    Kind kind = Kind::kCounter;
    std::vector<double> bounds;  ///< histogram bucket upper bounds
    std::vector<std::unique_ptr<Instrument>> instruments;
    std::map<std::string, Instrument*, std::less<>> by_label;
  };

  Instrument& resolve(std::string_view name, Kind kind,
                      std::string_view label_key,
                      std::string_view label_value, std::string_view help,
                      std::span<const double> bounds);

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  ///< exposition order
  std::map<std::string, Family*, std::less<>> by_name_;
};

/// Pre-resolved instrument handles for the lockstep tracker's round
/// loop (see homotopy::BatchPathTracker::set_metrics).  One struct is
/// shared by every shard of a service: the counters are service-wide
/// aggregates and every update is a relaxed atomic, so concurrent
/// shard rounds just add up.  All pointers are non-null after
/// from_registry; a default-constructed instance (all null) means "not
/// instrumented" and must not be attached.
struct TrackerMetrics {
  Counter* rounds = nullptr;              ///< lockstep rounds executed
  Counter* steps_accepted = nullptr;      ///< predictor/corrector accepts
  Counter* steps_rejected = nullptr;      ///< step-control rejections
  Counter* endgame_entries = nullptr;     ///< paths entering the Cauchy endgame
  Counter* endgame_retries = nullptr;     ///< failed attempts re-armed smaller
  Counter* newton_calls = nullptr;        ///< refine_batch invocations
  Counter* newton_iterations = nullptr;   ///< Newton updates applied, total
  /// Paths retired, labeled by homotopy::PathStatus.  Index order is
  /// the enum order: converged, at_infinity, stalled, diverged,
  /// cancelled (pinned against homotopy::to_string in test_obs).
  static constexpr std::size_t kStatuses = 5;
  Counter* retired_by_status[kStatuses] = {};
  Histogram* newton_iterations_per_path = nullptr;  ///< per corrector call
  Histogram* path_steps = nullptr;                  ///< accepted steps at retire
  Histogram* accept_streak = nullptr;  ///< growth streak length at rejection

  /// Registers (or re-finds) every family and resolves the handles.
  [[nodiscard]] static TrackerMetrics from_registry(MetricsRegistry& r);
};

}  // namespace polyeval::obs
