#pragma once

/// \file trace.hpp
/// The tracing half of the observability layer: span records over the
/// solve lifecycle (request -> scheduler round -> shard slice ->
/// device launch) carrying BOTH clocks -- host wall time (steady_clock
/// µs since the tracer's epoch) and the service's modeled async clock
/// (the same `modeled_us` currency as `solve::Report::Timing`).
///
/// Everything is gated on a `TraceLevel` that defaults to kOff: a
/// disabled tracer never records, never allocates, and the service
/// never takes a branch deeper than one `enabled()` check, so the
/// bitwise-parity and zero-allocation gates are untouched by default.
/// When enabled, recording allocates freely (vector growth, kernel
/// name copies) -- tracing is a diagnostic mode, not a hot path.
///
/// Thread contract: span mutation happens under the service lock
/// (coordinator only).  Device slices are written by the pool thread
/// that owns that device during a tick -- one writer per device vector,
/// no two devices share storage -- and read only after the round
/// barrier, so no synchronization is needed beyond the existing
/// fork/join.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace polyeval::obs {

/// How much of the lifecycle to record.  Levels are cumulative.
enum class TraceLevel : unsigned char {
  kOff = 0,       ///< record nothing (the default; zero overhead)
  kRequests = 1,  ///< request queue + tracking spans
  kRounds = 2,    ///< + scheduler tick spans and per-round engine slices
  kFull = 3,      ///< + per-launch kernel slices on the compute engines
};

[[nodiscard]] const char* to_string(TraceLevel level);

class Tracer {
 public:
  static constexpr std::size_t npos = ~std::size_t{0};

  /// One lifecycle span.  `cat` distinguishes the track family:
  /// "queue" / "request" (per-request rows), "round" (scheduler tick).
  struct Span {
    const char* name = "";  ///< static string; never owned
    const char* cat = "";
    std::uint64_t id = 0;  ///< request id, or tick ordinal for rounds
    double modeled_start_us = 0.0;
    double modeled_end_us = 0.0;
    double host_start_us = 0.0;
    double host_end_us = 0.0;
    /// Request spans: the modeled share attributed to the request --
    /// written from the same value that lands in
    /// solve::Report::Timing::modeled_us, so the trace and the report
    /// agree by construction.  Negative means "not set".
    double arg_modeled_us = -1.0;
    std::uint64_t arg_paths = 0;
    std::uint64_t arg_rounds = 0;
    bool open = true;
  };

  /// One slice on a device engine track, on the modeled clock.  The
  /// durations of a tick's slices sum exactly to the device's modeled
  /// charge for that tick (the pricing mirrors simt::estimate_log_us).
  struct DeviceSlice {
    enum Engine : unsigned char {
      kCompute = 0,  ///< kernel launches (per launch at kFull)
      kDmaH2D = 1,   ///< host-to-device DMA engine
      kDmaD2H = 2,   ///< device-to-host DMA engine
      kRound = 3,    ///< whole shard-round aggregate (the "shard slice")
    };
    unsigned char engine = kCompute;
    double start_us = 0.0;
    double end_us = 0.0;
    std::uint64_t bytes = 0;  ///< DMA slices only
    std::string name;
  };

  explicit Tracer(TraceLevel level = TraceLevel::kOff)
      : level_(level), epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] TraceLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(TraceLevel need) const noexcept {
    return level_ >= need;
  }

  /// Size the per-device slice tracks (idempotent, grows only).
  void set_devices(std::size_t n) {
    if (level_ == TraceLevel::kOff) return;
    if (devices_.size() < n) devices_.resize(n);
  }

  /// Host µs since the tracer's construction.
  [[nodiscard]] double host_now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Opens a span if `need` is enabled; returns npos (a no-op handle)
  /// otherwise.  end_span / span_args on npos are safe no-ops.
  std::size_t begin_span(const char* name, const char* cat, std::uint64_t id,
                         double modeled_start_us, TraceLevel need) {
    if (!enabled(need)) return npos;
    Span s;
    s.name = name;
    s.cat = cat;
    s.id = id;
    s.modeled_start_us = modeled_start_us;
    s.host_start_us = host_now_us();
    spans_.push_back(s);
    return spans_.size() - 1;
  }

  void end_span(std::size_t idx, double modeled_end_us) {
    if (idx == npos) return;
    Span& s = spans_[idx];
    s.modeled_end_us = modeled_end_us;
    s.host_end_us = host_now_us();
    s.open = false;
  }

  void span_args(std::size_t idx, double modeled_us, std::uint64_t paths,
                 std::uint64_t rounds) {
    if (idx == npos) return;
    spans_[idx].arg_modeled_us = modeled_us;
    spans_[idx].arg_paths = paths;
    spans_[idx].arg_rounds = rounds;
  }

  /// Device-engine slice; caller must have sized the track first and
  /// checked `enabled` (slice recording sits inside per-kernel loops,
  /// so the caller hoists the level check out of the loop).
  void add_device_slice(std::size_t device, DeviceSlice::Engine engine,
                        std::string name, double start_us, double end_us,
                        std::uint64_t bytes) {
    DeviceSlice s;
    s.engine = engine;
    s.start_us = start_us;
    s.end_us = end_us;
    s.bytes = bytes;
    s.name = std::move(name);
    devices_[device].push_back(std::move(s));
  }

  [[nodiscard]] std::span<const Span> spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t device_count() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] std::span<const DeviceSlice> device_slices(
      std::size_t device) const noexcept {
    return devices_[device];
  }

 private:
  TraceLevel level_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Span> spans_;
  std::vector<std::vector<DeviceSlice>> devices_;
};

}  // namespace polyeval::obs
