#pragma once

/// \file chrome_trace.hpp
/// Chrome trace-event JSON exporter for a recorded obs::Tracer: load
/// the output in https://ui.perfetto.dev or chrome://tracing to see
/// the modeled device timeline -- one track per device x engine
/// (compute, DMA up, DMA down) plus the service-level request and
/// scheduler-round tracks.  Timestamps (`ts`/`dur`) are the modeled
/// async clock in µs; host wall intervals ride along in each event's
/// `args` so both clocks survive the export.
///
/// Track layout (stable; scripts/validate_trace.py pins it):
///   pid 1       "solve service"; tid 1 = "scheduler", tid 100+id =
///               "request <id>" (a "queue" slice then a "request" slice)
///   pid 10 + d  "device <d>"; tid 0 = "compute", tid 1 = "dma h2d",
///               tid 2 = "dma d2h", tid 3 = "rounds"

#include <ostream>

#include "obs/trace.hpp"

namespace polyeval::obs {

void write_chrome_trace(std::ostream& os, const Tracer& tracer);

}  // namespace polyeval::obs
