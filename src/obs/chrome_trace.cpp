#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace polyeval::obs {
namespace {

constexpr int kServicePid = 1;
constexpr int kDevicePidBase = 10;
constexpr int kSchedulerTid = 1;
constexpr std::uint64_t kRequestTidBase = 100;

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void write_us(std::ostream& os, double us) {
  std::ostringstream tmp;
  tmp << std::setprecision(12) << us;
  os << tmp.str();
}

class EventSink {
 public:
  explicit EventSink(std::ostream& os) : os_(os) {}

  /// ph "M" metadata event naming a process or thread.
  void metadata(const char* what, int pid, int tid, std::string_view name) {
    open();
    os_ << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (tid >= 0) os_ << ",\"tid\":" << tid;
    os_ << ",\"args\":{\"name\":";
    write_json_string(os_, name);
    os_ << "}}";
  }

  /// ph "X" complete event; `args_json` is pre-rendered ("" for none).
  void complete(std::string_view name, const char* cat, int pid,
                std::uint64_t tid, double ts_us, double dur_us,
                const std::string& args_json) {
    open();
    os_ << "{\"name\":";
    write_json_string(os_, name);
    os_ << ",\"cat\":\"" << cat << "\",\"ph\":\"X\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"ts\":";
    write_us(os_, ts_us);
    os_ << ",\"dur\":";
    write_us(os_, std::max(0.0, dur_us));
    if (!args_json.empty()) os_ << ",\"args\":{" << args_json << '}';
    os_ << '}';
  }

 private:
  void open() {
    os_ << (first_ ? "\n " : ",\n ");
    first_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  EventSink sink(os);

  // --- metadata: process and thread names --------------------------------
  sink.metadata("process_name", kServicePid, -1, "solve service");
  sink.metadata("thread_name", kServicePid, kSchedulerTid, "scheduler");
  std::vector<std::uint64_t> request_ids;
  for (const Tracer::Span& s : tracer.spans()) {
    const std::string_view cat = s.cat;
    if (cat != "queue" && cat != "request") continue;
    if (std::find(request_ids.begin(), request_ids.end(), s.id) ==
        request_ids.end())
      request_ids.push_back(s.id);
  }
  std::sort(request_ids.begin(), request_ids.end());
  for (const std::uint64_t id : request_ids)
    sink.metadata("thread_name", kServicePid,
                  static_cast<int>(kRequestTidBase + id),
                  "request " + std::to_string(id));
  static constexpr const char* kEngineNames[4] = {"compute", "dma h2d",
                                                  "dma d2h", "rounds"};
  for (std::size_t d = 0; d < tracer.device_count(); ++d) {
    const int pid = kDevicePidBase + static_cast<int>(d);
    sink.metadata("process_name", pid, -1, "device " + std::to_string(d));
    bool used[4] = {false, false, false, false};
    for (const Tracer::DeviceSlice& s : tracer.device_slices(d))
      used[s.engine] = true;
    for (int e = 0; e < 4; ++e)
      if (used[e]) sink.metadata("thread_name", pid, e, kEngineNames[e]);
  }

  // --- service spans ------------------------------------------------------
  for (const Tracer::Span& s : tracer.spans()) {
    if (s.open) continue;  // never closed (cancelled mid-flight): skip
    const std::string_view cat = s.cat;
    const std::uint64_t tid =
        cat == "round" ? kSchedulerTid : kRequestTidBase + s.id;
    std::ostringstream args;
    args << std::setprecision(12) << "\"host_wall_us\":"
         << (s.host_end_us - s.host_start_us);
    if (s.arg_modeled_us >= 0.0)
      args << ",\"modeled_us\":" << s.arg_modeled_us;
    if (s.arg_paths > 0) args << ",\"paths\":" << s.arg_paths;
    if (s.arg_rounds > 0) args << ",\"rounds\":" << s.arg_rounds;
    sink.complete(s.name, s.cat, kServicePid, tid, s.modeled_start_us,
                  s.modeled_end_us - s.modeled_start_us, args.str());
  }

  // --- device engine slices ----------------------------------------------
  for (std::size_t d = 0; d < tracer.device_count(); ++d) {
    const int pid = kDevicePidBase + static_cast<int>(d);
    for (const Tracer::DeviceSlice& s : tracer.device_slices(d)) {
      std::string args;
      if (s.bytes > 0) args = "\"bytes\":" + std::to_string(s.bytes);
      static constexpr const char* kCats[4] = {"kernel", "dma", "dma",
                                               "shard_round"};
      sink.complete(s.name, kCats[s.engine], pid, s.engine, s.start_us,
                    s.end_us - s.start_us, args);
    }
  }

  os << "\n]}\n";
}

const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kRequests: return "requests";
    case TraceLevel::kRounds: return "rounds";
    case TraceLevel::kFull: return "full";
  }
  return "?";
}

}  // namespace polyeval::obs
