#include "prec/double_double.hpp"

#include <cmath>
#include <ostream>

#include "prec/detail/decimal_io.hpp"

namespace polyeval::prec {

DoubleDouble sqrt(const DoubleDouble& a) noexcept {
  if (a.is_zero()) return {};
  if (a.is_negative()) return {std::nan(""), std::nan("")};
  // Karp's trick: with x ~ 1/sqrt(a) accurate to double precision,
  // sqrt(a) ~ a*x + (a - (a*x)^2) * x / 2, and a*x, (a*x)^2 need only be
  // computed to double / double-double precision respectively.
  const double x = 1.0 / std::sqrt(a.hi());
  const double ax = a.hi() * x;
  return DoubleDouble::from_sum(ax, (a - sqr(DoubleDouble(ax))).hi() * (x * 0.5));
}

DoubleDouble floor(const DoubleDouble& a) noexcept {
  double hi = std::floor(a.hi());
  double lo = 0.0;
  if (hi == a.hi()) {  // high word already integral: floor the low word
    lo = std::floor(a.lo());
    hi = quick_two_sum(hi, lo, lo);
  }
  return {hi, lo};
}

DoubleDouble npwr(const DoubleDouble& a, int n) noexcept {
  if (n == 0) return {1.0};
  DoubleDouble r = a;
  DoubleDouble s{1.0};
  int m = n < 0 ? -n : n;
  while (m > 0) {
    if (m % 2 == 1) s *= r;
    m /= 2;
    if (m > 0) r = sqr(r);
  }
  return n < 0 ? DoubleDouble(1.0) / s : s;
}

std::string to_string(const DoubleDouble& a, int digits) {
  return detail::render_decimal(a, digits);
}

bool from_string(const std::string& s, DoubleDouble& out) {
  return detail::parse_decimal(s, out);
}

std::ostream& operator<<(std::ostream& os, const DoubleDouble& a) {
  return os << to_string(a);
}

}  // namespace polyeval::prec
