#include "prec/math.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <type_traits>

namespace polyeval::prec {

// Constants from QD 2.3.9 (componentwise exact limbs).
DoubleDouble dd_log2() noexcept {
  return {6.931471805599452862e-01, 2.3190468138462995584e-17};
}
DoubleDouble dd_e() noexcept {
  return {2.718281828459045091e+00, 1.445646891729250158e-16};
}
QuadDouble qd_log2() noexcept {
  return {6.931471805599452862e-01, 2.319046813846299558e-17,
          5.707708438416212066e-34, -3.582432210601811423e-50};
}
QuadDouble qd_e() noexcept {
  return {2.718281828459045091e+00, 1.445646891729250158e-16,
          -2.127717108038176765e-33, 1.515630159841218954e-49};
}

namespace {

/// 1/i! tables, computed once in the working precision.  The tail terms
/// of the Taylor series are small, so the O(eps) error of the runtime
/// division is harmless.
template <class Real>
const Real* inv_factorials() {
  static const auto table = [] {
    std::array<Real, 18> t{};
    Real fact(2.0);
    for (int i = 0; i < 18; ++i) {
      fact *= static_cast<double>(i + 3);
      t[static_cast<std::size_t>(i)] = Real(1.0) / fact;
    }
    return t;
  }();
  return table.data();
}

/// Shared exp skeleton: a = m log2 + r; exp(r/512) by Taylor; nine
/// squarings; scale by 2^m.
template <class Real>
Real exp_impl(const Real& a, const Real& log2_const, double eps, int taylor_terms) {
  constexpr double kInvK = 1.0 / 512.0;
  const double lead = a.to_double();
  if (lead <= -709.0) return Real(0.0);
  if (lead >= 709.0) return Real(std::numeric_limits<double>::infinity());
  if (a.is_zero()) return Real(1.0);

  const double m = std::floor(lead / 0.6931471805599453 + 0.5);
  const Real r = mul_pwr2(a - log2_const * m, kInvK);

  // exp(r) - 1 = r + r^2/2 + r^3/3! + ...
  Real p = sqr(r);
  Real s = r + mul_pwr2(p, 0.5);
  p *= r;
  const Real* inv_fact = inv_factorials<Real>();
  Real t = p * inv_fact[0];
  int i = 0;
  do {
    s += t;
    p *= r;
    ++i;
    t = p * inv_fact[i];
  } while (std::fabs(t.to_double()) > kInvK * eps && i < taylor_terms);
  s += t;

  // undo the /512 scaling: (1+s)^2 - 1 = 2s + s^2, nine times
  for (int j = 0; j < 9; ++j) s = mul_pwr2(s, 2.0) + sqr(s);
  s += 1.0;

  // scale by 2^m componentwise (exact)
  const int mi = static_cast<int>(m);
  if constexpr (std::is_same_v<Real, DoubleDouble>) {
    return ldexp(s, mi);
  } else {
    return {std::ldexp(s[0], mi), std::ldexp(s[1], mi), std::ldexp(s[2], mi),
            std::ldexp(s[3], mi)};
  }
}

/// log by Newton iteration on x -> x + a exp(-x) - 1, starting from the
/// double-precision logarithm; each pass doubles the correct digits.
template <class Real>
Real log_impl(const Real& a, int iterations, const Real& log2_const, double eps,
              int taylor_terms) {
  if (a.is_negative() || a.is_zero())
    return Real(std::numeric_limits<double>::quiet_NaN());
  Real x(std::log(a.to_double()));
  for (int i = 0; i < iterations; ++i)
    x = x + a * exp_impl(-x, log2_const, eps, taylor_terms) - 1.0;
  return x;
}

}  // namespace

DoubleDouble exp(const DoubleDouble& a) noexcept {
  return exp_impl(a, dd_log2(), 0x1p-105, 5);
}

QuadDouble exp(const QuadDouble& a) noexcept {
  return exp_impl(a, qd_log2(), 0x1p-209, 15);
}

DoubleDouble log(const DoubleDouble& a) noexcept {
  return log_impl(a, 2, dd_log2(), 0x1p-105, 5);
}

QuadDouble log(const QuadDouble& a) noexcept {
  return log_impl(a, 3, qd_log2(), 0x1p-209, 15);
}

DoubleDouble pow(const DoubleDouble& a, const DoubleDouble& b) noexcept {
  return exp(b * log(a));
}

QuadDouble pow(const QuadDouble& a, const QuadDouble& b) noexcept {
  return exp(b * log(a));
}

}  // namespace polyeval::prec
