#pragma once

/// \file double_double.hpp
/// Double-double arithmetic: an unevaluated sum of two IEEE doubles giving
/// roughly 32 significant decimal digits (eps ~ 2^-104).
///
/// This is the in-repo replacement for the QD 2.3.9 library (Hida, Li,
/// Bailey) that the paper selects for multiprecision path tracking.  The
/// algorithms are the "accurate" (IEEE-style) variants of QD.

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "prec/eft.hpp"

namespace polyeval::prec {

/// A double-double number: value == hi + lo, with |lo| <= ulp(hi)/2.
class DoubleDouble {
 public:
  constexpr DoubleDouble() noexcept = default;
  constexpr DoubleDouble(double h) noexcept : hi_(h) {}  // NOLINT(google-explicit-constructor)
  constexpr DoubleDouble(double h, double l) noexcept : hi_(h), lo_(l) {}

  /// Leading component (also the closest double to the value).
  [[nodiscard]] constexpr double hi() const noexcept { return hi_; }
  /// Trailing component.
  [[nodiscard]] constexpr double lo() const noexcept { return lo_; }

  [[nodiscard]] constexpr double to_double() const noexcept { return hi_; }
  [[nodiscard]] int to_int() const noexcept { return static_cast<int>(hi_); }

  /// Normalizing constructor from an unordered pair: a + b exactly.
  [[nodiscard]] static DoubleDouble from_sum(double a, double b) noexcept {
    double e;
    const double s = two_sum(a, b, e);
    return {s, e};
  }

  /// Exact product of two doubles as a double-double.
  [[nodiscard]] static DoubleDouble from_prod(double a, double b) noexcept {
    double e;
    const double p = two_prod(a, b, e);
    return {p, e};
  }

  [[nodiscard]] bool is_zero() const noexcept { return hi_ == 0.0; }
  [[nodiscard]] bool is_negative() const noexcept { return hi_ < 0.0; }
  [[nodiscard]] bool is_finite() const noexcept { return std::isfinite(hi_); }
  [[nodiscard]] bool is_nan() const noexcept { return std::isnan(hi_) || std::isnan(lo_); }

  DoubleDouble& operator+=(const DoubleDouble& b) noexcept { return *this = *this + b; }
  DoubleDouble& operator-=(const DoubleDouble& b) noexcept { return *this = *this - b; }
  DoubleDouble& operator*=(const DoubleDouble& b) noexcept { return *this = *this * b; }
  DoubleDouble& operator/=(const DoubleDouble& b) noexcept { return *this = *this / b; }

  friend DoubleDouble operator-(const DoubleDouble& a) noexcept { return {-a.hi_, -a.lo_}; }

  /// Accurate (IEEE) addition: two two_sums plus double renormalization.
  friend DoubleDouble operator+(const DoubleDouble& a, const DoubleDouble& b) noexcept {
    double s1, s2, t1, t2;
    s1 = two_sum(a.hi_, b.hi_, s2);
    t1 = two_sum(a.lo_, b.lo_, t2);
    s2 += t1;
    s1 = quick_two_sum(s1, s2, s2);
    s2 += t2;
    s1 = quick_two_sum(s1, s2, s2);
    return {s1, s2};
  }

  friend DoubleDouble operator-(const DoubleDouble& a, const DoubleDouble& b) noexcept {
    return a + (-b);
  }

  friend DoubleDouble operator*(const DoubleDouble& a, const DoubleDouble& b) noexcept {
    double p1, p2;
    p1 = two_prod(a.hi_, b.hi_, p2);
    p2 += a.hi_ * b.lo_;
    p2 += a.lo_ * b.hi_;
    p1 = quick_two_sum(p1, p2, p2);
    return {p1, p2};
  }

  /// Accurate division: three steps of long division in double-double.
  friend DoubleDouble operator/(const DoubleDouble& a, const DoubleDouble& b) noexcept {
    double q1 = a.hi_ / b.hi_;
    DoubleDouble r = a - q1 * b;
    double q2 = r.hi_ / b.hi_;
    r -= q2 * b;
    const double q3 = r.hi_ / b.hi_;
    q1 = quick_two_sum(q1, q2, q2);
    return DoubleDouble(q1, q2) + q3;
  }

  friend DoubleDouble operator+(const DoubleDouble& a, double b) noexcept {
    double s1, s2;
    s1 = two_sum(a.hi_, b, s2);
    s2 += a.lo_;
    s1 = quick_two_sum(s1, s2, s2);
    return {s1, s2};
  }
  friend DoubleDouble operator+(double a, const DoubleDouble& b) noexcept { return b + a; }
  friend DoubleDouble operator-(const DoubleDouble& a, double b) noexcept { return a + (-b); }
  friend DoubleDouble operator-(double a, const DoubleDouble& b) noexcept { return (-b) + a; }

  friend DoubleDouble operator*(const DoubleDouble& a, double b) noexcept {
    double p1, p2;
    p1 = two_prod(a.hi_, b, p2);
    p2 += a.lo_ * b;
    p1 = quick_two_sum(p1, p2, p2);
    return {p1, p2};
  }
  friend DoubleDouble operator*(double a, const DoubleDouble& b) noexcept { return b * a; }
  friend DoubleDouble operator/(const DoubleDouble& a, double b) noexcept {
    return a / DoubleDouble(b);
  }
  friend DoubleDouble operator/(double a, const DoubleDouble& b) noexcept {
    return DoubleDouble(a) / b;
  }

  friend bool operator==(const DoubleDouble& a, const DoubleDouble& b) noexcept {
    return a.hi_ == b.hi_ && a.lo_ == b.lo_;
  }
  friend std::partial_ordering operator<=>(const DoubleDouble& a,
                                           const DoubleDouble& b) noexcept {
    if (const auto c = a.hi_ <=> b.hi_; c != std::partial_ordering::equivalent) return c;
    return a.lo_ <=> b.lo_;
  }

 private:
  double hi_ = 0.0;
  double lo_ = 0.0;
};

[[nodiscard]] inline DoubleDouble abs(const DoubleDouble& a) noexcept {
  return a.is_negative() ? -a : a;
}

/// Multiply by an exact power of two (error-free).
[[nodiscard]] inline DoubleDouble mul_pwr2(const DoubleDouble& a, double p2) noexcept {
  return {a.hi() * p2, a.lo() * p2};
}

/// Scale by 2^n (error-free).
[[nodiscard]] inline DoubleDouble ldexp(const DoubleDouble& a, int n) noexcept {
  return {std::ldexp(a.hi(), n), std::ldexp(a.lo(), n)};
}

/// Square with one fewer cross product than the general multiply.
[[nodiscard]] inline DoubleDouble sqr(const DoubleDouble& a) noexcept {
  double p1, p2;
  p1 = two_sqr(a.hi(), p2);
  p2 += 2.0 * a.hi() * a.lo();
  p2 += a.lo() * a.lo();
  p1 = quick_two_sum(p1, p2, p2);
  return {p1, p2};
}

/// Square root by Karp's method: one double rsqrt estimate plus one
/// double-double Newton correction.
[[nodiscard]] DoubleDouble sqrt(const DoubleDouble& a) noexcept;

/// Largest integer not exceeding a.
[[nodiscard]] DoubleDouble floor(const DoubleDouble& a) noexcept;

/// Integer power by binary exponentiation (n may be negative).
[[nodiscard]] DoubleDouble npwr(const DoubleDouble& a, int n) noexcept;

/// Decimal rendering with \p digits significant digits (default: full
/// double-double precision, 32 digits).
[[nodiscard]] std::string to_string(const DoubleDouble& a, int digits = 32);

/// Parse a decimal string ([-+]?digits[.digits][eE[-+]exp]).
/// Returns false on malformed input.
bool from_string(const std::string& s, DoubleDouble& out);

std::ostream& operator<<(std::ostream& os, const DoubleDouble& a);

}  // namespace polyeval::prec
