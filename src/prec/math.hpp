#pragma once

/// \file math.hpp
/// Transcendental functions for the extended precisions, following the
/// QD 2.3.9 algorithms: exp by argument reduction (x = m log2 + r,
/// r scaled by 1/512, Taylor series, nine squarings), log by Newton
/// iteration on exp, pow via exp(b log a).

#include "prec/double_double.hpp"
#include "prec/quad_double.hpp"

namespace polyeval::prec {

/// log(2) to double-double precision (QD constant).
[[nodiscard]] DoubleDouble dd_log2() noexcept;
/// e to double-double precision.
[[nodiscard]] DoubleDouble dd_e() noexcept;
/// log(2) to quad-double precision (QD constant).
[[nodiscard]] QuadDouble qd_log2() noexcept;
/// e to quad-double precision.
[[nodiscard]] QuadDouble qd_e() noexcept;

[[nodiscard]] DoubleDouble exp(const DoubleDouble& a) noexcept;
[[nodiscard]] QuadDouble exp(const QuadDouble& a) noexcept;

/// Natural logarithm; NaN for non-positive arguments.
[[nodiscard]] DoubleDouble log(const DoubleDouble& a) noexcept;
[[nodiscard]] QuadDouble log(const QuadDouble& a) noexcept;

/// a^b = exp(b log a); requires a > 0.
[[nodiscard]] DoubleDouble pow(const DoubleDouble& a, const DoubleDouble& b) noexcept;
[[nodiscard]] QuadDouble pow(const QuadDouble& a, const QuadDouble& b) noexcept;

}  // namespace polyeval::prec
