#include "prec/quad_double.hpp"

#include <cmath>
#include <ostream>

#include "prec/detail/decimal_io.hpp"

namespace polyeval::prec {

QuadDouble QuadDouble::renormed(double c0, double c1, double c2,
                                double c3) noexcept {
  double s0, s1, s2 = 0.0, s3 = 0.0;
  if (std::isinf(c0)) return {c0, c1, c2, c3};

  s0 = quick_two_sum(c2, c3, c3);
  s0 = quick_two_sum(c1, s0, c2);
  c0 = quick_two_sum(c0, s0, c1);

  s0 = c0;
  s1 = c1;
  if (s1 != 0.0) {
    s1 = quick_two_sum(s1, c2, s2);
    if (s2 != 0.0)
      s2 = quick_two_sum(s2, c3, s3);
    else
      s1 = quick_two_sum(s1, c3, s2);
  } else {
    s0 = quick_two_sum(s0, c2, s1);
    if (s1 != 0.0)
      s1 = quick_two_sum(s1, c3, s2);
    else
      s0 = quick_two_sum(s0, c3, s1);
  }
  return {s0, s1, s2, s3};
}

QuadDouble QuadDouble::renormed(double c0, double c1, double c2, double c3,
                                double c4) noexcept {
  double s0, s1, s2 = 0.0, s3 = 0.0;
  if (std::isinf(c0)) return {c0, c1, c2, c3};

  s0 = quick_two_sum(c3, c4, c4);
  s0 = quick_two_sum(c2, s0, c3);
  s0 = quick_two_sum(c1, s0, c2);
  c0 = quick_two_sum(c0, s0, c1);

  s0 = c0;
  s1 = c1;
  if (s1 != 0.0) {
    s1 = quick_two_sum(s1, c2, s2);
    if (s2 != 0.0) {
      s2 = quick_two_sum(s2, c3, s3);
      if (s3 != 0.0)
        s3 += c4;
      else
        s2 = quick_two_sum(s2, c4, s3);
    } else {
      s1 = quick_two_sum(s1, c3, s2);
      if (s2 != 0.0)
        s2 = quick_two_sum(s2, c4, s3);
      else
        s1 = quick_two_sum(s1, c4, s2);
    }
  } else {
    s0 = quick_two_sum(s0, c2, s1);
    if (s1 != 0.0) {
      s1 = quick_two_sum(s1, c3, s2);
      if (s2 != 0.0)
        s2 = quick_two_sum(s2, c4, s3);
      else
        s1 = quick_two_sum(s1, c4, s2);
    } else {
      s0 = quick_two_sum(s0, c3, s1);
      if (s1 != 0.0)
        s1 = quick_two_sum(s1, c4, s2);
      else
        s0 = quick_two_sum(s0, c4, s1);
    }
  }
  return {s0, s1, s2, s3};
}

QuadDouble operator+(const QuadDouble& a, const QuadDouble& b) noexcept {
  double s0, s1, s2, s3;
  double t0, t1, t2, t3;

  s0 = two_sum(a[0], b[0], t0);
  s1 = two_sum(a[1], b[1], t1);
  s2 = two_sum(a[2], b[2], t2);
  s3 = two_sum(a[3], b[3], t3);

  s1 = two_sum(s1, t0, t0);
  three_sum(s2, t0, t1);
  three_sum2(s3, t0, t2);
  t0 = t0 + t1 + t3;

  return QuadDouble::renormed(s0, s1, s2, s3, t0);
}

QuadDouble operator+(const QuadDouble& a, double b) noexcept {
  double c0, c1, c2, c3, e;
  c0 = two_sum(a[0], b, e);
  c1 = two_sum(a[1], e, e);
  c2 = two_sum(a[2], e, e);
  c3 = two_sum(a[3], e, e);
  return QuadDouble::renormed(c0, c1, c2, c3, e);
}

QuadDouble operator*(const QuadDouble& a, double b) noexcept {
  double p0, p1, p2, p3;
  double q0, q1, q2;
  double s0, s1, s2, s3, s4;

  p0 = two_prod(a[0], b, q0);
  p1 = two_prod(a[1], b, q1);
  p2 = two_prod(a[2], b, q2);
  p3 = a[3] * b;

  s0 = p0;
  s1 = two_sum(q0, p1, s2);

  three_sum(s2, q1, p2);
  three_sum2(q1, q2, p3);
  s3 = q1;
  s4 = q2 + p2;

  return QuadDouble::renormed(s0, s1, s2, s3, s4);
}

QuadDouble operator*(const QuadDouble& a, const QuadDouble& b) noexcept {
  // O(eps^0..2) partial products exactly, O(eps^3) terms in plain double.
  double p0, p1, p2, p3, p4, p5;
  double q0, q1, q2, q3, q4, q5;
  double t0, t1;
  double s0, s1, s2;

  p0 = two_prod(a[0], b[0], q0);
  p1 = two_prod(a[0], b[1], q1);
  p2 = two_prod(a[1], b[0], q2);
  p3 = two_prod(a[0], b[2], q3);
  p4 = two_prod(a[1], b[1], q4);
  p5 = two_prod(a[2], b[0], q5);

  three_sum(p1, p2, q0);

  // six-three sum of (p2, q1, q2) and (p3, p4, p5)
  three_sum(p2, q1, q2);
  three_sum(p3, p4, p5);
  s0 = two_sum(p2, p3, t0);
  s1 = two_sum(q1, p4, t1);
  s2 = q2 + p5;
  s1 = two_sum(s1, t0, t0);
  s2 += (t0 + t1);

  s1 += a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + q0 + q3 + q4 + q5;
  return QuadDouble::renormed(p0, p1, s0, s1, s2);
}

QuadDouble sqr(const QuadDouble& a) noexcept { return a * a; }

QuadDouble operator/(const QuadDouble& a, const QuadDouble& b) noexcept {
  // Long division: four quotient digits in double precision, then renorm.
  double q0, q1, q2, q3;
  QuadDouble r;

  q0 = a[0] / b[0];
  r = a - (b * q0);

  q1 = r[0] / b[0];
  r -= (b * q1);

  q2 = r[0] / b[0];
  r -= (b * q2);

  q3 = r[0] / b[0];
  return QuadDouble::renormed(q0, q1, q2, q3);
}

QuadDouble sqrt(const QuadDouble& a) noexcept {
  if (a.is_zero()) return {};
  if (a.is_negative()) return {std::nan(""), 0.0, 0.0, 0.0};
  // Newton iteration on x -> x + x(1 - a x^2)/2, converging to 1/sqrt(a);
  // each iteration doubles the number of correct digits (3 needed from a
  // double seed), then multiply by a.
  QuadDouble r(1.0 / std::sqrt(a[0]));
  const QuadDouble h = mul_pwr2(a, 0.5);
  r += ((0.5 - h * sqr(r)) * r);
  r += ((0.5 - h * sqr(r)) * r);
  r += ((0.5 - h * sqr(r)) * r);
  r *= a;
  return r;
}

QuadDouble floor(const QuadDouble& a) noexcept {
  double c0 = std::floor(a[0]);
  double c1 = 0.0, c2 = 0.0, c3 = 0.0;
  if (c0 == a[0]) {
    c1 = std::floor(a[1]);
    if (c1 == a[1]) {
      c2 = std::floor(a[2]);
      if (c2 == a[2]) c3 = std::floor(a[3]);
    }
  }
  return QuadDouble::renormed(c0, c1, c2, c3);
}

QuadDouble npwr(const QuadDouble& a, int n) noexcept {
  if (n == 0) return {1.0};
  QuadDouble r = a;
  QuadDouble s{1.0};
  int m = n < 0 ? -n : n;
  while (m > 0) {
    if (m % 2 == 1) s *= r;
    m /= 2;
    if (m > 0) r = sqr(r);
  }
  return n < 0 ? QuadDouble(1.0) / s : s;
}

std::string to_string(const QuadDouble& a, int digits) {
  return detail::render_decimal(a, digits);
}

bool from_string(const std::string& s, QuadDouble& out) {
  return detail::parse_decimal(s, out);
}

std::ostream& operator<<(std::ostream& os, const QuadDouble& a) {
  return os << to_string(a);
}

}  // namespace polyeval::prec
