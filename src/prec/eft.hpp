#pragma once

/// \file eft.hpp
/// Error-free transforms: the building blocks of double-double and
/// quad-double arithmetic (Dekker 1971, Knuth, Hida-Li-Bailey QD-2.3.9).
///
/// Every function returns the leading (rounded) part of an exact operation
/// and stores the exact rounding error in \p err, so that
/// `result + err == a (op) b` holds exactly in real arithmetic.
///
/// These routines are only correct under strict IEEE-754 double semantics;
/// the build disables FP contraction and fast-math for this reason.

#include <cmath>

namespace polyeval::prec {

/// Sum of two doubles known to satisfy |a| >= |b| (or a == 0).
/// One addition cheaper than two_sum.
inline double quick_two_sum(double a, double b, double& err) noexcept {
  const double s = a + b;
  err = b - (s - a);
  return s;
}

/// Difference a - b with |a| >= |b|.
inline double quick_two_diff(double a, double b, double& err) noexcept {
  const double s = a - b;
  err = (a - s) - b;
  return s;
}

/// Sum of two arbitrary doubles; err is the exact rounding error (Knuth).
inline double two_sum(double a, double b, double& err) noexcept {
  const double s = a + b;
  const double bb = s - a;
  err = (a - (s - bb)) + (b - bb);
  return s;
}

/// Difference of two arbitrary doubles with exact error.
inline double two_diff(double a, double b, double& err) noexcept {
  const double s = a - b;
  const double bb = s - a;
  err = (a - (s - bb)) - (b + bb);
  return s;
}

/// Product with exact error, using fused multiply-add.
inline double two_prod(double a, double b, double& err) noexcept {
  const double p = a * b;
  err = std::fma(a, b, -p);
  return p;
}

/// Square with exact error.
inline double two_sqr(double a, double& err) noexcept {
  const double p = a * a;
  err = std::fma(a, a, -p);
  return p;
}

/// Three-term sum used by quad-double accumulation:
/// on return (a, b, c) hold the leading sum and two error terms of a+b+c.
inline void three_sum(double& a, double& b, double& c) noexcept {
  double t1, t2, t3;
  t1 = two_sum(a, b, t2);
  a = two_sum(c, t1, t3);
  b = two_sum(t2, t3, c);
}

/// Variant of three_sum that folds the two trailing errors into b.
inline void three_sum2(double& a, double& b, double c) noexcept {
  double t1, t2, t3;
  t1 = two_sum(a, b, t2);
  a = two_sum(c, t1, t3);
  b = t2 + t3;
}

}  // namespace polyeval::prec
