#pragma once

/// \file decimal_io.hpp
/// Shared decimal rendering / parsing for multi-component reals
/// (DoubleDouble, QuadDouble).  Works for any type supporting the usual
/// arithmetic with double, comparisons, and to_double().

#include <cctype>
#include <cmath>
#include <string>

namespace polyeval::prec::detail {

/// Render \p value with \p digits significant decimal digits in scientific
/// notation ("-d.dddddde[+-]XX").  Digit-by-digit extraction: scale into
/// [1, 10), then repeatedly peel the leading digit.
template <class Real>
std::string render_decimal(Real value, int digits) {
  const double lead = value.to_double();
  if (std::isnan(lead)) return "nan";
  if (std::isinf(lead)) return lead > 0 ? "inf" : "-inf";

  std::string out;
  if (value.is_negative()) {
    out += '-';
    value = -value;
  }
  if (value.is_zero()) {
    out += "0.";
    out.append(static_cast<std::size_t>(digits > 1 ? digits - 1 : 1), '0');
    out += "e+00";
    return out;
  }

  int exp10 = static_cast<int>(std::floor(std::log10(std::fabs(value.to_double()))));
  // Scale value into [1, 10) by exact-as-possible decade steps.
  if (exp10 > 0) {
    for (int i = 0; i < exp10; ++i) value /= 10.0;
  } else {
    for (int i = 0; i < -exp10; ++i) value *= 10.0;
  }
  // log10 estimate can be off by one near decade boundaries.
  if (value >= Real(10.0)) {
    value /= 10.0;
    ++exp10;
  } else if (value < Real(1.0)) {
    value *= 10.0;
    --exp10;
  }

  std::string raw;
  raw.reserve(static_cast<std::size_t>(digits) + 2);
  for (int i = 0; i <= digits; ++i) {  // one extra digit for rounding
    int d = static_cast<int>(value.to_double());
    if (d < 0) d = 0;
    if (d > 9) d = 9;
    raw += static_cast<char>('0' + d);
    value = (value - static_cast<double>(d)) * 10.0;
  }

  // Round on the extra digit, propagating carries.
  if (raw.back() >= '5') {
    int i = static_cast<int>(raw.size()) - 2;
    for (; i >= 0; --i) {
      if (raw[static_cast<std::size_t>(i)] != '9') {
        ++raw[static_cast<std::size_t>(i)];
        break;
      }
      raw[static_cast<std::size_t>(i)] = '0';
    }
    if (i < 0) {  // 9.99... rolled over to 10.0...
      raw.insert(raw.begin(), '1');
      ++exp10;
    }
  }
  raw.resize(static_cast<std::size_t>(digits));

  out += raw[0];
  out += '.';
  out += raw.substr(1);
  out += 'e';
  out += exp10 < 0 ? '-' : '+';
  const int ae = exp10 < 0 ? -exp10 : exp10;
  if (ae < 10) out += '0';
  out += std::to_string(ae);
  return out;
}

/// Parse a decimal literal into \p out.  Accepts [-+]?d*[.d*][eE[-+]?d+].
/// Returns false if no digits are present or trailing garbage remains.
template <class Real>
bool parse_decimal(const std::string& s, Real& out) {
  std::size_t i = 0;
  const std::size_t n = s.size();
  bool negative = false;
  if (i < n && (s[i] == '+' || s[i] == '-')) negative = (s[i++] == '-');

  Real acc(0.0);
  int frac_digits = 0;
  bool any_digit = false;
  bool seen_point = false;
  for (; i < n; ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      acc = acc * 10.0 + static_cast<double>(c - '0');
      any_digit = true;
      if (seen_point) ++frac_digits;
    } else if (c == '.' && !seen_point) {
      seen_point = true;
    } else {
      break;
    }
  }
  if (!any_digit) return false;

  int exp10 = -frac_digits;
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    bool eneg = false;
    if (i < n && (s[i] == '+' || s[i] == '-')) eneg = (s[i++] == '-');
    int e = 0;
    bool any_e = false;
    for (; i < n && std::isdigit(static_cast<unsigned char>(s[i])); ++i) {
      e = e * 10 + (s[i] - '0');
      any_e = true;
    }
    if (!any_e) return false;
    exp10 += eneg ? -e : e;
  }
  if (i != n) return false;

  if (exp10 > 0) {
    for (int j = 0; j < exp10; ++j) acc *= 10.0;
  } else {
    for (int j = 0; j < -exp10; ++j) acc /= 10.0;
  }
  out = negative ? -acc : acc;
  return true;
}

}  // namespace polyeval::prec::detail
