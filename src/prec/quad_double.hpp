#pragma once

/// \file quad_double.hpp
/// Quad-double arithmetic: an unevaluated sum of four IEEE doubles giving
/// roughly 64 significant decimal digits (eps ~ 2^-209).  Port of the
/// QD 2.3.9 algorithms (Hida, Li, Bailey 2001) cited by the paper.

#include <array>
#include <cmath>
#include <compare>
#include <iosfwd>
#include <string>

#include "prec/double_double.hpp"
#include "prec/eft.hpp"

namespace polyeval::prec {

/// A quad-double number: value == c0 + c1 + c2 + c3 with strictly
/// decreasing magnitudes (each component at most half an ulp of the
/// previous one after renormalization).
class QuadDouble {
 public:
  constexpr QuadDouble() noexcept = default;
  constexpr QuadDouble(double c0) noexcept : c_{c0, 0.0, 0.0, 0.0} {}  // NOLINT(google-explicit-constructor)
  constexpr QuadDouble(double c0, double c1, double c2, double c3) noexcept
      : c_{c0, c1, c2, c3} {}
  QuadDouble(const DoubleDouble& dd) noexcept : c_{dd.hi(), dd.lo(), 0.0, 0.0} {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr double operator[](int i) const noexcept {
    return c_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] constexpr double to_double() const noexcept { return c_[0]; }
  [[nodiscard]] DoubleDouble to_double_double() const noexcept {
    return DoubleDouble::from_sum(c_[0], c_[1]);
  }

  [[nodiscard]] bool is_zero() const noexcept { return c_[0] == 0.0; }
  [[nodiscard]] bool is_negative() const noexcept { return c_[0] < 0.0; }
  [[nodiscard]] bool is_nan() const noexcept {
    return std::isnan(c_[0]) || std::isnan(c_[1]) || std::isnan(c_[2]) || std::isnan(c_[3]);
  }

  /// Renormalize five components into canonical four-component form.
  static QuadDouble renormed(double c0, double c1, double c2, double c3,
                             double c4) noexcept;
  /// Renormalize four components into canonical form.
  static QuadDouble renormed(double c0, double c1, double c2, double c3) noexcept;

  QuadDouble& operator+=(const QuadDouble& b) noexcept { return *this = *this + b; }
  QuadDouble& operator-=(const QuadDouble& b) noexcept { return *this = *this - b; }
  QuadDouble& operator*=(const QuadDouble& b) noexcept { return *this = *this * b; }
  QuadDouble& operator/=(const QuadDouble& b) noexcept { return *this = *this / b; }

  friend QuadDouble operator-(const QuadDouble& a) noexcept {
    return {-a.c_[0], -a.c_[1], -a.c_[2], -a.c_[3]};
  }

  friend QuadDouble operator+(const QuadDouble& a, const QuadDouble& b) noexcept;
  friend QuadDouble operator-(const QuadDouble& a, const QuadDouble& b) noexcept {
    return a + (-b);
  }
  friend QuadDouble operator*(const QuadDouble& a, const QuadDouble& b) noexcept;
  friend QuadDouble operator/(const QuadDouble& a, const QuadDouble& b) noexcept;

  friend QuadDouble operator+(const QuadDouble& a, double b) noexcept;
  friend QuadDouble operator+(double a, const QuadDouble& b) noexcept { return b + a; }
  friend QuadDouble operator-(const QuadDouble& a, double b) noexcept { return a + (-b); }
  friend QuadDouble operator-(double a, const QuadDouble& b) noexcept { return (-b) + a; }
  friend QuadDouble operator*(const QuadDouble& a, double b) noexcept;
  friend QuadDouble operator*(double a, const QuadDouble& b) noexcept { return b * a; }
  friend QuadDouble operator/(const QuadDouble& a, double b) noexcept {
    return a / QuadDouble(b);
  }
  friend QuadDouble operator/(double a, const QuadDouble& b) noexcept {
    return QuadDouble(a) / b;
  }

  friend bool operator==(const QuadDouble& a, const QuadDouble& b) noexcept {
    return a.c_ == b.c_;
  }
  friend std::partial_ordering operator<=>(const QuadDouble& a,
                                           const QuadDouble& b) noexcept {
    for (int i = 0; i < 4; ++i) {
      if (const auto c = a.c_[static_cast<std::size_t>(i)] <=>
                         b.c_[static_cast<std::size_t>(i)];
          c != std::partial_ordering::equivalent)
        return c;
    }
    return std::partial_ordering::equivalent;
  }

 private:
  std::array<double, 4> c_{0.0, 0.0, 0.0, 0.0};
};

[[nodiscard]] inline QuadDouble abs(const QuadDouble& a) noexcept {
  return a.is_negative() ? -a : a;
}

/// Multiply by an exact power of two (error-free).
[[nodiscard]] inline QuadDouble mul_pwr2(const QuadDouble& a, double p2) noexcept {
  return {a[0] * p2, a[1] * p2, a[2] * p2, a[3] * p2};
}

[[nodiscard]] QuadDouble sqr(const QuadDouble& a) noexcept;
[[nodiscard]] QuadDouble sqrt(const QuadDouble& a) noexcept;
[[nodiscard]] QuadDouble floor(const QuadDouble& a) noexcept;
[[nodiscard]] QuadDouble npwr(const QuadDouble& a, int n) noexcept;

/// Decimal rendering (default: full quad-double precision, 64 digits).
[[nodiscard]] std::string to_string(const QuadDouble& a, int digits = 64);
bool from_string(const std::string& s, QuadDouble& out);
std::ostream& operator<<(std::ostream& os, const QuadDouble& a);

}  // namespace polyeval::prec
