#pragma once

/// \file random.hpp
/// Seeded random scalar generation for tests and property sweeps.  For the
/// extended types the trailing components are filled as well, so random
/// values genuinely exercise all limbs.

#include <random>

#include "prec/scalar_traits.hpp"

namespace polyeval::prec {

/// Uniform random scalars in [-1, 1] with full-precision significands.
template <RealScalar T>
class UniformScalar {
 public:
  explicit UniformScalar(std::uint64_t seed) : rng_(seed) {}

  T operator()() {
    if constexpr (std::is_same_v<T, double>) {
      return dist_(rng_);
    } else if constexpr (std::is_same_v<T, DoubleDouble>) {
      return DoubleDouble(dist_(rng_)) + dist_(rng_) * 0x1p-53;
    } else {
      QuadDouble q(dist_(rng_));
      q += dist_(rng_) * 0x1p-53;
      q += dist_(rng_) * 0x1p-106;
      q += dist_(rng_) * 0x1p-159;
      return q;
    }
  }

 private:
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{-1.0, 1.0};
};

}  // namespace polyeval::prec
