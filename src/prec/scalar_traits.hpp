#pragma once

/// \file scalar_traits.hpp
/// Compile-time description of the real scalar types the evaluation
/// pipeline is instantiated with: double, DoubleDouble and QuadDouble.

#include <cmath>
#include <string_view>

#include "prec/double_double.hpp"
#include "prec/quad_double.hpp"

namespace polyeval::prec {

template <class T>
struct ScalarTraits;

template <>
struct ScalarTraits<double> {
  using type = double;
  static constexpr std::string_view name = "double";
  /// Unit roundoff 2^-53.
  static constexpr double epsilon = 0x1p-53;
  /// Number of reliable decimal digits.
  static constexpr int decimal_digits = 16;
  /// Software-arithmetic cost factor relative to hardware double
  /// (double = 1; the paper reports ~8 for double-double, see section 1).
  static constexpr double cost_factor = 1.0;
  static double from_double(double d) noexcept { return d; }
  static double to_double(double d) noexcept { return d; }
  static double abs(double d) noexcept { return std::fabs(d); }
  static double sqrt(double d) noexcept { return std::sqrt(d); }
};

template <>
struct ScalarTraits<DoubleDouble> {
  using type = DoubleDouble;
  static constexpr std::string_view name = "double-double";
  /// 2^-105: half an ulp of the 106-bit effective significand.
  static constexpr double epsilon = 0x1p-105;
  static constexpr int decimal_digits = 31;
  static constexpr double cost_factor = 8.0;
  static DoubleDouble from_double(double d) noexcept { return {d}; }
  static double to_double(const DoubleDouble& d) noexcept { return d.to_double(); }
  static DoubleDouble abs(const DoubleDouble& d) noexcept { return prec::abs(d); }
  static DoubleDouble sqrt(const DoubleDouble& d) noexcept { return prec::sqrt(d); }
};

template <>
struct ScalarTraits<QuadDouble> {
  using type = QuadDouble;
  static constexpr std::string_view name = "quad-double";
  /// 2^-209.
  static constexpr double epsilon = 0x1p-209;
  static constexpr int decimal_digits = 62;
  /// QD reports quad-double multiplication at roughly an order of
  /// magnitude over double-double.
  static constexpr double cost_factor = 60.0;
  static QuadDouble from_double(double d) noexcept { return {d}; }
  static double to_double(const QuadDouble& d) noexcept { return d.to_double(); }
  static QuadDouble abs(const QuadDouble& d) noexcept { return prec::abs(d); }
  static QuadDouble sqrt(const QuadDouble& d) noexcept { return prec::sqrt(d); }
};

/// Concept satisfied by the three supported real scalar types.
template <class T>
concept RealScalar = requires {
  typename ScalarTraits<T>::type;
};

}  // namespace polyeval::prec
