#pragma once

/// \file sharded_solver.hpp
/// Path-tracking batches routed through device shards.
///
/// The manager/worker layout of solver.hpp, with the workers promoted
/// from CPU evaluators to per-shard devices: each shard owns a
/// `simt::Device` (with its own pool and pre-warmed scratch) and a
/// device evaluator for the target system; the start system stays on
/// the CPU (it is a handful of x_i^d - 1 monomials, not the uniform
/// structure the massively parallel pipeline wants).  Path jobs are
/// claimed in chunks from a shared cursor -- the dynamic balance of the
/// MPI manager/worker implementations the paper cites -- and results
/// land indexed by path, so the output order is deterministic.
///
/// Geometry: PROJECTIVE tracking is the default -- start roots are
/// embedded in a random patch hyperplane c . z = 1 (homogenize.hpp),
/// the trackers renormalize into the patch and classify endpoints
/// (converged / at infinity / stalled / diverged) with the Cauchy
/// endgame answering t -> 1 stalls.  The device still evaluates the
/// AFFINE target (the homogeneous rows are lifted on the host,
/// projective.hpp), so the paper's uniform structure requirement is
/// untouched.  The affine mode remains behind TrackGeometry::kAffine as
/// the parity/escape hatch; its paths to infinity stall as before.
///
/// Reproducibility: a path's trajectory depends only on its start root,
/// gamma, the patch and the evaluators, all identical across shards, so
/// solutions are BITWISE reproducible across shard counts (the sharded
/// analogue of the evaluator parity guarantee).  Requires a
/// uniform-structure target (pack_system's precondition).

#include <memory>
#include <optional>

#include "ad/cpu_evaluator.hpp"
#include "core/fused_evaluator.hpp"
#include "core/pipelined_evaluator.hpp"
#include "homotopy/batch_tracker.hpp"
#include "homotopy/solver.hpp"
#include "service/solve_service.hpp"
#include "simt/device_registry.hpp"

#include "homotopy/shard_options.hpp"

namespace polyeval::homotopy {

namespace detail {

/// Everything one shard's manager thread owns while tracking a path at
/// a time in AFFINE coordinates: the per-device target evaluator, the
/// CPU start-system evaluator, and the homotopy/tracker built over
/// them.  One instance per shard, used by one participant at a time.
template <prec::RealScalar S, class TargetEvalT>
struct ShardTrackState {
  using TargetEval = TargetEvalT;
  using StartEval = ad::CpuEvaluator<S>;

  TargetEval f;
  StartEval g;
  Homotopy<S, TargetEval, StartEval> h;
  PathTracker<S, Homotopy<S, TargetEval, StartEval>> tracker;

  ShardTrackState(simt::Device& device, const poly::PolynomialSystem& target,
                  const poly::PolynomialSystem& start_system,
                  cplx::Complex<double> gamma, const ShardedSolveOptions& options)
      : f(device, target, 1,
          {.block_size = options.block_size,
           .interchange = {},
           .tuning = options.tuning,
           .detect_races = options.detect_races}),
        g(start_system),
        h(f, g, gamma),
        tracker(h, options.track) {}
};

/// The projective per-path counterpart: the device still evaluates the
/// affine target; the homotopy lifts it into the patch.
template <prec::RealScalar S, class TargetEvalT>
struct ShardProjectiveTrackState {
  using TargetEval = TargetEvalT;

  TargetEval f;
  ProjectiveHomotopy<S, TargetEval> h;
  PathTracker<S, ProjectiveHomotopy<S, TargetEval>> tracker;

  ShardProjectiveTrackState(simt::Device& device,
                            const poly::PolynomialSystem& target,
                            const poly::PolynomialSystem& start_system,
                            cplx::Complex<double> gamma,
                            std::span<const cplx::Complex<double>> patch,
                            const ShardedSolveOptions& options)
      : f(device, target, 1,
          {.block_size = options.block_size,
           .interchange = {},
           .tuning = options.tuning,
           .detect_races = options.detect_races}),
        h(f, target, start_system, gamma, patch),
        tracker(h, options.track) {}
};

/// One shard's affine lockstep state: the device evaluator sized for
/// whole live-set batches, the CPU start evaluator, and the
/// BatchPathTracker over them.
template <prec::RealScalar S, class TargetEvalT>
struct ShardLockstepState {
  using TargetEval = TargetEvalT;
  using StartEval = ad::CpuEvaluator<S>;

  TargetEval f;
  StartEval g;
  BatchPathTracker<S, TargetEval> tracker;

  ShardLockstepState(simt::Device& device, const poly::PolynomialSystem& target,
                     const poly::PolynomialSystem& start_system,
                     cplx::Complex<double> gamma, const ShardedSolveOptions& options,
                     unsigned batch_capacity, std::size_t max_paths)
      : f(device, target, batch_capacity,
          {.block_size = options.block_size,
           .interchange = {},
           .tuning = options.tuning,
           .detect_races = options.detect_races}),
        g(start_system),
        tracker(device, f, g, gamma, options.track, max_paths) {}
};

/// The projective lockstep state: batched projective homotopy over the
/// affine device evaluator.
template <prec::RealScalar S, class TargetEvalT>
struct ShardProjectiveLockstepState {
  using TargetEval = TargetEvalT;

  TargetEval f;
  BatchedProjectiveHomotopy<S, TargetEval> h;
  BatchPathTracker<S, BatchedProjectiveHomotopy<S, TargetEval>> tracker;

  ShardProjectiveLockstepState(simt::Device& device,
                               const poly::PolynomialSystem& target,
                               const poly::PolynomialSystem& start_system,
                               cplx::Complex<double> gamma,
                               std::span<const cplx::Complex<double>> patch,
                               const ShardedSolveOptions& options,
                               unsigned batch_capacity, std::size_t max_paths)
      : f(device, target, batch_capacity,
          {.block_size = options.block_size,
           .interchange = {},
           .tuning = options.tuning,
           .detect_races = options.detect_races}),
        h(f, target, start_system, gamma, patch),
        tracker(device, h, options.track, max_paths) {}
};

/// The lockstep tracking loop, generic over the shard state: paths are
/// partitioned into contiguous per-shard slices (deterministic; a
/// path's trajectory is independent of its shard, so any partition
/// yields bitwise-identical summaries) and each shard advances its
/// whole slice in lockstep rounds.  `make_state(device, capacity,
/// max_paths)` builds one shard's state.
template <prec::RealScalar S, class MakeState>
SolveSummary<S> track_lockstep_loop(
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    const ShardedSolveOptions& options, MakeState&& make_state) {
  const std::uint64_t paths = start_roots.size();

  SolveSummary<S> summary;
  summary.attempted = paths;
  summary.paths.resize(paths);
  if (paths == 0) return summary;

  simt::DeviceRegistry registry(options.shards, simt::DeviceSpec::tesla_c2050(),
                                options.workers_per_shard);
  const std::size_t per_shard =
      (paths + registry.size() - 1) / registry.size();  // last slice may be short
  const unsigned capacity = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, options.lockstep_batch), per_shard));
  // Shards past the last slice (more shards than paths) own nothing;
  // skip their evaluator/tracker construction entirely.
  const std::size_t used = (paths + per_shard - 1) / per_shard;

  using State = typename std::invoke_result_t<MakeState, simt::Device&, unsigned,
                                              std::size_t>::element_type;
  std::vector<std::unique_ptr<State>> shards;
  shards.reserve(used);
  for (std::size_t i = 0; i < used; ++i)
    shards.push_back(make_state(registry.device(static_cast<unsigned>(i)),
                                capacity, per_shard));

  const auto track_slice = [&](std::size_t shard) {
    const std::size_t first = shard * per_shard;
    const std::size_t count = std::min(per_shard, paths - first);
    auto& tracker = shards[shard]->tracker;
    tracker.start(start_roots, first, count);
    tracker.run();
    for (std::size_t i = 0; i < count; ++i)
      summary.paths[first + i] = tracker.result(i);
  };

  if (used == 1) {
    track_slice(0);
  } else {
    simt::ThreadPool manager(static_cast<unsigned>(used) - 1);
    // The claimed index IS the shard id (one slice per shard).
    manager.parallel_for_ranges(
        used, 1, [&](unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) track_slice(s);
        });
  }

  for (const auto& p : summary.paths) {
    if (p.success) ++summary.successes;
    if (p.status == PathStatus::kAtInfinity) ++summary.at_infinity;
  }
  return summary;
}

/// The manager/worker per-path tracking loop, generic over the shard
/// state; `make_state(device)` builds one shard's state.
template <prec::RealScalar S, class MakeState>
SolveSummary<S> track_perpath_loop(
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    const ShardedSolveOptions& options, MakeState&& make_state) {
  const std::uint64_t paths = start_roots.size();

  SolveSummary<S> summary;
  summary.attempted = paths;
  summary.paths.resize(paths);
  if (paths == 0) return summary;

  simt::DeviceRegistry registry(options.shards, simt::DeviceSpec::tesla_c2050(),
                                options.workers_per_shard);
  using State = typename std::invoke_result_t<MakeState, simt::Device&>::element_type;
  std::vector<std::unique_ptr<State>> shards;
  shards.reserve(registry.size());
  for (unsigned i = 0; i < registry.size(); ++i)
    shards.push_back(make_state(registry.device(i)));

  const auto track_one = [&](unsigned shard, std::uint64_t path) {
    summary.paths[path] = shards[shard]->tracker.track(
        std::span<const cplx::Complex<S>>(start_roots[path]));
  };

  if (registry.size() == 1) {
    for (std::uint64_t p = 0; p < paths; ++p) track_one(0, p);
  } else {
    simt::ThreadPool manager(registry.size() - 1);
    const std::size_t chunk = options.chunk_paths == 0 ? 1 : options.chunk_paths;
    manager.parallel_for_ranges(
        paths, chunk, [&](unsigned participant, std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) track_one(participant, p);
        });
  }

  for (const auto& p : summary.paths) {
    if (p.success) ++summary.successes;
    if (p.status == PathStatus::kAtInfinity) ++summary.at_infinity;
  }
  return summary;
}

/// Geometry-resolved dispatch over mode for one device-evaluator type.
template <prec::RealScalar S, class TargetEval>
SolveSummary<S> track_paths_sharded_with(
    const poly::PolynomialSystem& target, const poly::PolynomialSystem& start_system,
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    cplx::Complex<double> gamma, const ShardedSolveOptions& options) {
  if (options.geometry == TrackGeometry::kProjective) {
    // Embed the affine start roots into the patch ONCE, before any
    // sharding, so every shard sees identical projective start points.
    const auto patch_d = random_patch(target.dimension() + 1, options.patch_seed);
    std::vector<cplx::Complex<S>> patch;
    patch.reserve(patch_d.size());
    for (const auto& c : patch_d) patch.push_back(cplx::Complex<S>::from_double(c));
    std::vector<std::vector<cplx::Complex<S>>> embedded;
    embedded.reserve(start_roots.size());
    for (const auto& root : start_roots)
      embedded.push_back(embed_in_patch<S>(
          std::span<const cplx::Complex<S>>(root),
          std::span<const cplx::Complex<S>>(patch)));

    if (options.mode == ShardTrackMode::kLockstep)
      return track_lockstep_loop<S>(
          embedded, options,
          [&](simt::Device& device, unsigned capacity, std::size_t max_paths) {
            return std::make_unique<ShardProjectiveLockstepState<S, TargetEval>>(
                device, target, start_system, gamma,
                std::span<const cplx::Complex<double>>(patch_d), options, capacity,
                max_paths);
          });
    return track_perpath_loop<S>(
        embedded, options, [&](simt::Device& device) {
          return std::make_unique<ShardProjectiveTrackState<S, TargetEval>>(
              device, target, start_system, gamma,
              std::span<const cplx::Complex<double>>(patch_d), options);
        });
  }

  if (options.mode == ShardTrackMode::kLockstep)
    return track_lockstep_loop<S>(
        start_roots, options,
        [&](simt::Device& device, unsigned capacity, std::size_t max_paths) {
          return std::make_unique<ShardLockstepState<S, TargetEval>>(
              device, target, start_system, gamma, options, capacity, max_paths);
        });
  return track_perpath_loop<S>(
      start_roots, options, [&](simt::Device& device) {
        return std::make_unique<ShardTrackState<S, TargetEval>>(
            device, target, start_system, gamma, options);
      });
}

}  // namespace detail

/// Track the given AFFINE start roots of `start_system` through the
/// gamma homotopy to roots of `target`, path jobs distributed over
/// device shards.  summary.paths[i] is the i-th start root's result; in
/// projective geometry (the default) its solution is the patched
/// projective point (n+1 coordinates, homotopy::dehomogenize for the
/// affine chart) and its status classifies the endpoint.
namespace detail {

/// The fused lockstep path, re-expressed as a one-shot call into the
/// solve service: one request carrying every path, a service sized so
/// the whole per-shard slice is resident (slots_per_shard), drained to
/// completion.  Endpoints are bitwise identical to the former dedicated
/// loop -- a path's trajectory depends only on its start root, gamma,
/// patch and evaluators, all of which the service reproduces exactly --
/// so the pipelined/per-path loops below remain as independent parity
/// baselines.
template <prec::RealScalar S>
SolveSummary<S> track_lockstep_via_service(
    const poly::PolynomialSystem& target, const poly::PolynomialSystem& start_system,
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    cplx::Complex<double> gamma, const ShardedSolveOptions& options) {
  const std::uint64_t paths = start_roots.size();
  if (paths == 0) {
    SolveSummary<S> summary;
    return summary;
  }
  const std::size_t per_shard = (paths + options.shards - 1) / options.shards;
  typename service::SolveService<S>::Config config;
  config.shards = options.shards;
  config.workers_per_shard = options.workers_per_shard;
  config.lockstep_batch = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, options.lockstep_batch), per_shard));
  config.slots_per_shard = per_shard;
  config.max_tenants = 1;
  config.max_queued = 1;
  config.max_paths_per_request = paths;
  service::SolveService<S> svc(std::move(config));

  service::SolveRequest<S> request{target, solve::Options::from_sharded(options),
                                   typename service::SolveRequest<S>::StartData{
                                       start_system, start_roots, gamma},
                                   /*round_budget=*/0, /*modeled_deadline_us=*/0.0};
  auto ticket = svc.submit(std::move(request));
  if (!ticket.admitted())
    throw std::invalid_argument("track_paths_sharded: request rejected: " +
                                std::string(to_string(ticket.verdict())));
  svc.drain();
  return ticket.report().to_summary();
}

}  // namespace detail

template <prec::RealScalar S>
SolveSummary<S> track_paths_sharded(
    const poly::PolynomialSystem& target, const poly::PolynomialSystem& start_system,
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    cplx::Complex<double> gamma, const ShardedSolveOptions& options = {}) {
  if (options.mode == ShardTrackMode::kLockstep &&
      options.backend == ShardEvalBackend::kFused)
    return detail::track_lockstep_via_service<S>(target, start_system, start_roots,
                                                 gamma, options);
  if (options.backend == ShardEvalBackend::kPipelined)
    return detail::track_paths_sharded_with<S, core::PipelinedFusedEvaluator<S>>(
        target, start_system, start_roots, gamma, options);
  return detail::track_paths_sharded_with<S, core::FusedGpuEvaluator<S>>(
      target, start_system, start_roots, gamma, options);
}

/// Track the total-degree paths of `target` over device shards -- the
/// sharded counterpart of solve_total_degree, with the per-path
/// evaluation work running on the shards' devices.
template <prec::RealScalar S>
SolveSummary<S> solve_total_degree_sharded(const poly::PolynomialSystem& target,
                                           const ShardedSolveOptions& options = {}) {
  using C = cplx::Complex<S>;
  const TotalDegreeStart start(target);
  const auto gamma = random_gamma(options.gamma_seed);

  std::uint64_t paths = start.num_paths();
  if (options.max_paths > 0) paths = std::min(paths, options.max_paths);
  else if (start.num_paths_saturated())
    throw std::invalid_argument(
        "solve_total_degree_sharded: Bezout number exceeds 2^64; set max_paths");

  std::vector<std::vector<C>> roots;
  roots.reserve(paths);
  for (std::uint64_t p = 0; p < paths; ++p) {
    const auto root_d = start.start_root(p);
    std::vector<C> root;
    root.reserve(root_d.size());
    for (const auto& z : root_d) root.push_back(C::from_double(z));
    roots.push_back(std::move(root));
  }

  return track_paths_sharded<S>(target, start.system(), roots, gamma, options);
}

}  // namespace polyeval::homotopy
