#pragma once

/// \file sharded_solver.hpp
/// Path-tracking batches routed through device shards.
///
/// The manager/worker layout of solver.hpp, with the workers promoted
/// from CPU evaluators to per-shard devices: each shard owns a
/// `simt::Device` (with its own pool and pre-warmed scratch) and a
/// `FusedGpuEvaluator` for the target system; the start system stays on
/// the CPU (it is a handful of x_i^d - 1 monomials, not the uniform
/// structure the massively parallel pipeline wants).  Path jobs are
/// claimed in chunks from a shared cursor -- the dynamic balance of the
/// MPI manager/worker implementations the paper cites -- and results
/// land indexed by path, so the output order is deterministic.
///
/// Reproducibility: a path's trajectory depends only on its start root,
/// gamma and the evaluators, all identical across shards, so solutions
/// are BITWISE reproducible across shard counts (the sharded analogue of
/// the evaluator parity guarantee).  Requires a uniform-structure
/// target (pack_system's precondition).

#include <memory>
#include <optional>

#include "ad/cpu_evaluator.hpp"
#include "core/fused_evaluator.hpp"
#include "core/pipelined_evaluator.hpp"
#include "homotopy/batch_tracker.hpp"
#include "homotopy/solver.hpp"
#include "simt/device_registry.hpp"

namespace polyeval::homotopy {

/// Which per-shard device evaluator serves the target system.
enum class ShardEvalBackend {
  kFused,      ///< FusedGpuEvaluator: synchronous single-launch batches
  kPipelined,  ///< PipelinedFusedEvaluator: stream-pipelined micro-chunks
};

/// How a shard advances the paths it owns.
enum class ShardTrackMode {
  /// BatchPathTracker: ALL live paths of the shard advance per round,
  /// predictor/corrector/endgame stages batched into full-set launches
  /// (the default; this is the batch the device schedules were built
  /// for).  Paths are partitioned contiguously across shards.
  kLockstep,
  /// PathTracker, one path per single-point launch, path jobs claimed in
  /// chunks from the shared cursor -- the pre-lockstep schedule, kept as
  /// the parity baseline.
  kPerPath,
};

struct ShardedSolveOptions {
  TrackOptions track;
  std::uint64_t gamma_seed = 20120102;
  unsigned shards = 2;
  unsigned workers_per_shard = 1;  ///< device pool threads per shard
  unsigned chunk_paths = 2;        ///< paths per manager claim (per-path mode)
  std::uint64_t max_paths = 0;     ///< 0 = all Bezout paths
  /// Per-shard fused evaluator geometry; 0 = pick_block_size -- warp
  /// blocks for the lockstep mode's SM-filling batches, widened blocks
  /// for the per-path mode's single-point grids.  Results are bitwise
  /// independent of the choice.
  unsigned block_size = 0;
  bool detect_races = false;       ///< run the shards' launches checked
  /// The lockstep tracker batches every predictor/corrector stage over
  /// the shard's live set, so the pipelined backend finally has
  /// transfers worth hiding behind its kernels; in per-path mode both
  /// backends issue the same single-point launches.  Results are
  /// bitwise identical under either.
  ShardEvalBackend backend = ShardEvalBackend::kFused;
  /// Lockstep by default; per-path kept behind the enum for parity
  /// testing (results are bitwise identical across modes).
  ShardTrackMode mode = ShardTrackMode::kLockstep;
  /// Lockstep device batch capacity: live-set launches are chunked to
  /// this many points (also the per-shard evaluator's buffer size).
  unsigned lockstep_batch = 64;
};

namespace detail {

/// Everything one shard's manager thread owns while tracking: the
/// per-device target evaluator, the CPU start-system evaluator, and the
/// homotopy/tracker built over them.  One instance per shard, used by
/// one participant at a time.
template <prec::RealScalar S, class TargetEvalT>
struct ShardTrackState {
  using TargetEval = TargetEvalT;
  using StartEval = ad::CpuEvaluator<S>;

  TargetEval f;
  StartEval g;
  Homotopy<S, TargetEval, StartEval> h;
  PathTracker<S, TargetEval, StartEval> tracker;

  ShardTrackState(simt::Device& device, const poly::PolynomialSystem& target,
                  const poly::PolynomialSystem& start_system,
                  cplx::Complex<double> gamma, const ShardedSolveOptions& options)
      : f(device, target, 1,
          {.block_size = options.block_size, .detect_races = options.detect_races}),
        g(start_system),
        h(f, g, gamma),
        tracker(h, options.track) {}
};

/// One shard's lockstep state: the device evaluator sized for whole
/// live-set batches, the CPU start evaluator, and the BatchPathTracker
/// over them.
template <prec::RealScalar S, class TargetEvalT>
struct ShardLockstepState {
  using TargetEval = TargetEvalT;
  using StartEval = ad::CpuEvaluator<S>;

  TargetEval f;
  StartEval g;
  BatchPathTracker<S, TargetEval> tracker;

  ShardLockstepState(simt::Device& device, const poly::PolynomialSystem& target,
                     const poly::PolynomialSystem& start_system,
                     cplx::Complex<double> gamma, const ShardedSolveOptions& options,
                     unsigned batch_capacity, std::size_t max_paths)
      : f(device, target, batch_capacity,
          {.block_size = options.block_size, .detect_races = options.detect_races}),
        g(start_system),
        tracker(device, f, g, gamma, options.track, max_paths) {}
};

/// The lockstep tracking loop: paths are partitioned into contiguous
/// per-shard slices (deterministic; a path's trajectory is independent
/// of its shard, so any partition yields bitwise-identical summaries)
/// and each shard advances its whole slice in lockstep rounds.
template <prec::RealScalar S, class TargetEval>
SolveSummary<S> track_paths_lockstep_with(
    const poly::PolynomialSystem& target, const poly::PolynomialSystem& start_system,
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    cplx::Complex<double> gamma, const ShardedSolveOptions& options) {
  const std::uint64_t paths = start_roots.size();

  SolveSummary<S> summary;
  summary.attempted = paths;
  summary.paths.resize(paths);
  if (paths == 0) return summary;

  simt::DeviceRegistry registry(options.shards, simt::DeviceSpec::tesla_c2050(),
                                options.workers_per_shard);
  const std::size_t per_shard =
      (paths + registry.size() - 1) / registry.size();  // last slice may be short
  const unsigned capacity = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, options.lockstep_batch), per_shard));
  // Shards past the last slice (more shards than paths) own nothing;
  // skip their evaluator/tracker construction entirely.
  const std::size_t used = (paths + per_shard - 1) / per_shard;

  std::vector<std::unique_ptr<ShardLockstepState<S, TargetEval>>> shards;
  shards.reserve(used);
  for (std::size_t i = 0; i < used; ++i)
    shards.push_back(std::make_unique<ShardLockstepState<S, TargetEval>>(
        registry.device(static_cast<unsigned>(i)), target, start_system, gamma,
        options, capacity, per_shard));

  const auto track_slice = [&](std::size_t shard) {
    const std::size_t first = shard * per_shard;
    const std::size_t count = std::min(per_shard, paths - first);
    auto& tracker = shards[shard]->tracker;
    tracker.start(start_roots, first, count);
    tracker.run();
    for (std::size_t i = 0; i < count; ++i)
      summary.paths[first + i] = tracker.result(i);
  };

  if (used == 1) {
    track_slice(0);
  } else {
    simt::ThreadPool manager(static_cast<unsigned>(used) - 1);
    // The claimed index IS the shard id (one slice per shard).
    manager.parallel_for_ranges(
        used, 1, [&](unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) track_slice(s);
        });
  }

  for (const auto& p : summary.paths)
    if (p.success) ++summary.successes;
  return summary;
}

/// The manager/worker tracking loop, generic over the per-shard device
/// evaluator; track_paths_sharded dispatches on the options' backend.
template <prec::RealScalar S, class TargetEval>
SolveSummary<S> track_paths_sharded_with(
    const poly::PolynomialSystem& target, const poly::PolynomialSystem& start_system,
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    cplx::Complex<double> gamma, const ShardedSolveOptions& options) {
  const std::uint64_t paths = start_roots.size();

  SolveSummary<S> summary;
  summary.attempted = paths;
  summary.paths.resize(paths);
  if (paths == 0) return summary;

  simt::DeviceRegistry registry(options.shards, simt::DeviceSpec::tesla_c2050(),
                                options.workers_per_shard);
  std::vector<std::unique_ptr<ShardTrackState<S, TargetEval>>> shards;
  shards.reserve(registry.size());
  for (unsigned i = 0; i < registry.size(); ++i)
    shards.push_back(std::make_unique<ShardTrackState<S, TargetEval>>(
        registry.device(i), target, start_system, gamma, options));

  const auto track_one = [&](unsigned shard, std::uint64_t path) {
    summary.paths[path] = shards[shard]->tracker.track(
        std::span<const cplx::Complex<S>>(start_roots[path]));
  };

  if (registry.size() == 1) {
    for (std::uint64_t p = 0; p < paths; ++p) track_one(0, p);
  } else {
    simt::ThreadPool manager(registry.size() - 1);
    const std::size_t chunk = options.chunk_paths == 0 ? 1 : options.chunk_paths;
    manager.parallel_for_ranges(
        paths, chunk, [&](unsigned participant, std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) track_one(participant, p);
        });
  }

  for (const auto& p : summary.paths)
    if (p.success) ++summary.successes;
  return summary;
}

}  // namespace detail

/// Track the given start roots of `start_system` through the gamma
/// homotopy to roots of `target`, path jobs distributed over device
/// shards.  summary.paths[i] is the i-th start root's result.
template <prec::RealScalar S>
SolveSummary<S> track_paths_sharded(
    const poly::PolynomialSystem& target, const poly::PolynomialSystem& start_system,
    const std::vector<std::vector<cplx::Complex<S>>>& start_roots,
    cplx::Complex<double> gamma, const ShardedSolveOptions& options = {}) {
  if (options.mode == ShardTrackMode::kLockstep) {
    if (options.backend == ShardEvalBackend::kPipelined)
      return detail::track_paths_lockstep_with<S, core::PipelinedFusedEvaluator<S>>(
          target, start_system, start_roots, gamma, options);
    return detail::track_paths_lockstep_with<S, core::FusedGpuEvaluator<S>>(
        target, start_system, start_roots, gamma, options);
  }
  if (options.backend == ShardEvalBackend::kPipelined)
    return detail::track_paths_sharded_with<S, core::PipelinedFusedEvaluator<S>>(
        target, start_system, start_roots, gamma, options);
  return detail::track_paths_sharded_with<S, core::FusedGpuEvaluator<S>>(
      target, start_system, start_roots, gamma, options);
}

/// Track the total-degree paths of `target` over device shards -- the
/// sharded counterpart of solve_total_degree, with the per-path
/// evaluation work running on the shards' devices.
template <prec::RealScalar S>
SolveSummary<S> solve_total_degree_sharded(const poly::PolynomialSystem& target,
                                           const ShardedSolveOptions& options = {}) {
  using C = cplx::Complex<S>;
  const TotalDegreeStart start(target);
  const auto gamma = random_gamma(options.gamma_seed);

  std::uint64_t paths = start.num_paths();
  if (options.max_paths > 0) paths = std::min(paths, options.max_paths);
  else if (start.num_paths_saturated())
    throw std::invalid_argument(
        "solve_total_degree_sharded: Bezout number exceeds 2^64; set max_paths");

  std::vector<std::vector<C>> roots;
  roots.reserve(paths);
  for (std::uint64_t p = 0; p < paths; ++p) {
    const auto root_d = start.start_root(p);
    std::vector<C> root;
    root.reserve(root_d.size());
    for (const auto& z : root_d) root.push_back(C::from_double(z));
    roots.push_back(std::move(root));
  }

  return track_paths_sharded<S>(target, start.system(), roots, gamma, options);
}

}  // namespace polyeval::homotopy
