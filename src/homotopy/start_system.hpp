#pragma once

/// \file start_system.hpp
/// Total-degree start systems g_i(x) = x_i^{d_i} - 1 whose Prod d_i
/// roots (tuples of roots of unity) start the homotopy paths.

#include <cstdint>
#include <vector>

#include "poly/system.hpp"

namespace polyeval::homotopy {

class TotalDegreeStart {
 public:
  /// Start system matching the degrees of the target system f.
  explicit TotalDegreeStart(const poly::PolynomialSystem& target);

  [[nodiscard]] const poly::PolynomialSystem& system() const noexcept { return system_; }
  [[nodiscard]] const std::vector<unsigned>& degrees() const noexcept { return degrees_; }

  /// Bezout number: the number of homotopy paths.  Saturates at 2^64-1
  /// (see num_paths_saturated); "all paths" consumers must reject or
  /// cap a saturated count, start_root stays valid for any index.
  [[nodiscard]] std::uint64_t num_paths() const noexcept { return num_paths_; }

  /// True when the true Bezout number exceeds 64 bits and num_paths()
  /// is the saturated bound, not a path count anything should iterate.
  [[nodiscard]] bool num_paths_saturated() const noexcept {
    return num_paths_ == ~std::uint64_t{0};
  }

  /// The path-th start root: x_i = exp(2 pi i j_i / d_i) with (j_1..j_n)
  /// the mixed-radix digits of `path`.
  [[nodiscard]] std::vector<cplx::Complex<double>> start_root(std::uint64_t path) const;

 private:
  std::vector<unsigned> degrees_;
  std::uint64_t num_paths_;
  poly::PolynomialSystem system_;
};

}  // namespace polyeval::homotopy
