#pragma once

/// \file solver.hpp
/// All-paths total-degree solver: the manager/worker loop the paper's
/// introduction describes (path-tracking jobs distributed over workers).
/// Each worker owns private evaluators, mirroring the per-process state
/// of the MPI implementations the paper cites.

#include <algorithm>
#include <cmath>

#include "ad/cpu_evaluator.hpp"
#include "homotopy/start_system.hpp"
#include "homotopy/tracker.hpp"
#include "simt/thread_pool.hpp"

namespace polyeval::homotopy {

struct SolveOptions {
  TrackOptions track;
  std::uint64_t gamma_seed = 20120102;
  unsigned workers = 1;          ///< worker threads for path jobs
  std::uint64_t max_paths = 0;   ///< 0 = all Bezout paths
};

template <prec::RealScalar S>
struct SolveSummary {
  std::vector<TrackResult<S>> paths;
  std::uint64_t attempted = 0;
  std::uint64_t successes = 0;    ///< kConverged endpoints
  std::uint64_t at_infinity = 0;  ///< kAtInfinity endpoints (projective mode)

  /// Paths with a classified endpoint (converged or at infinity): the
  /// solved-paths numerator of bench_tracking's solved_frac column.
  [[nodiscard]] std::uint64_t classified() const noexcept {
    return successes + at_infinity;
  }

  /// Distinct solutions among the successful endpoints (max-norm
  /// tolerance matching).
  [[nodiscard]] std::vector<std::vector<cplx::Complex<S>>> distinct_solutions(
      double tolerance = 1e-6) const {
    std::vector<std::vector<cplx::Complex<S>>> found;
    for (const auto& p : paths) {
      if (!p.success) continue;
      const bool seen = std::any_of(found.begin(), found.end(), [&](const auto& q) {
        double worst = 0.0;
        for (std::size_t i = 0; i < q.size(); ++i)
          worst = std::max(worst, cplx::max_abs_diff(q[i], p.solution[i]));
        return worst < tolerance;
      });
      if (!seen) found.push_back(p.solution);
    }
    return found;
  }
};

/// Track every total-degree path of the target system in precision S.
template <prec::RealScalar S>
SolveSummary<S> solve_total_degree(const poly::PolynomialSystem& target,
                                   const SolveOptions& options = {}) {
  using C = cplx::Complex<S>;
  const TotalDegreeStart start(target);
  const auto gamma = random_gamma(options.gamma_seed);

  std::uint64_t paths = start.num_paths();
  if (options.max_paths > 0) paths = std::min(paths, options.max_paths);
  else if (start.num_paths_saturated())
    throw std::invalid_argument(
        "solve_total_degree: Bezout number exceeds 2^64; set max_paths");

  SolveSummary<S> summary;
  summary.attempted = paths;
  summary.paths.resize(paths);

  simt::ThreadPool pool(options.workers);
  pool.parallel_for(paths, [&](std::size_t path) {
    // Worker-private evaluators: no shared mutable state between jobs.
    ad::CpuEvaluator<S> f(target);
    ad::CpuEvaluator<S> g(start.system());
    Homotopy<S, ad::CpuEvaluator<S>, ad::CpuEvaluator<S>> h(f, g, gamma);
    PathTracker<S, ad::CpuEvaluator<S>, ad::CpuEvaluator<S>> tracker(h, options.track);

    const auto root_d = start.start_root(path);
    std::vector<C> root;
    root.reserve(root_d.size());
    for (const auto& z : root_d) root.push_back(C::from_double(z));
    summary.paths[path] = tracker.track(std::span<const C>(root));
  });

  for (const auto& p : summary.paths) {
    if (p.success) ++summary.successes;
    if (p.status == PathStatus::kAtInfinity) ++summary.at_infinity;
  }
  return summary;
}

}  // namespace polyeval::homotopy
