#pragma once

/// \file projective.hpp
/// Projective (patched homogeneous) tracking substrate.  The target
/// system is homogenized with an extra coordinate z_n and restricted to
/// the random patch hyperplane c . z = 1 (homogenize.hpp), so a path
/// that diverges to infinity in affine coordinates converges to a
/// finite patch point with z_n -> 0 -- the tracker classifies it
/// instead of stalling.
///
/// The device never sees the homogenized system (it is not uniform in
/// the paper's (n, m, k, d) sense): the affine target f keeps running
/// the fused kernels at the pullback point x = z / z_n, and the
/// homogeneous rows are LIFTED on the host by powers of z_n,
///
///   F_i(z)          = z_n^{d_i} f_i(x),
///   dF_i/dz_j       = z_n^{d_i - 1} (df_i/dx_j)(x)          (j < n),
///   dF_i/dz_n       = z_n^{d_i - 1} (d_i f_i(x) - sum_j x_j (df_i/dx_j)(x)),
///
/// which is exact (Euler's identity gives the z_n column) and keeps the
/// batched machinery intact.  Every homogeneous row i (lifted target
/// and homogenized start alike) is additionally ROW-SCALED by
/// 1 / ||z||_inf^{d_i}: a homogeneous row of degree d_i shrinks like
/// ||z||^{d_i}, so without the scaling a point with small coordinates
/// (z_n well below 1 on the patch) satisfies ANY residual tolerance
/// vacuously and the corrector stops correcting.  Row scaling is a
/// diagonal preconditioner -- Newton steps and Davidenko flows are
/// mathematically unchanged (the scale cancels against the Jacobian)
/// -- but the residual max-norm becomes scale-invariant, so the
/// tracking and endpoint tolerances mean what they say at every
/// distance from infinity.  The start system is homogenized once into
/// an explicit (n+1)-square system (its rows plus the patch row) and
/// evaluated by the CPU reference evaluator, as the affine trackers
/// already do for g.
///
/// The per-point lift/blend arithmetic lives in ONE copy
/// (detail::ProjectiveSystem + detail::assemble_projective*), shared by
/// the scalar ProjectiveHomotopy and the lockstep
/// BatchedProjectiveHomotopy, so the scalar and batched projective
/// trackers agree bit for bit by construction -- the same contract the
/// affine pair holds.

#include <limits>

#include "ad/cpu_evaluator.hpp"
#include "homotopy/homogenize.hpp"
#include "homotopy/homotopy.hpp"

namespace polyeval::homotopy {

namespace detail {

/// The one copy of the projective per-point arithmetic: pullback,
/// z_n-power lift, patch renormalization and the at-infinity measure.
template <prec::RealScalar S>
class ProjectiveSystem {
  using C = cplx::Complex<S>;

 public:
  ProjectiveSystem(const poly::PolynomialSystem& target,
                   std::span<const cplx::Complex<double>> patch)
      : n_(target.dimension()), degrees_(target.degrees()) {
    if (patch.size() != std::size_t{n_} + 1)
      throw std::invalid_argument("ProjectiveSystem: patch has wrong dimension");
    unsigned max_degree = 1;
    for (const unsigned d : degrees_) {
      if (d == 0)
        throw std::invalid_argument("ProjectiveSystem: zero-degree polynomial");
      max_degree = std::max(max_degree, d);
    }
    patch_.reserve(patch.size());
    for (const auto& c : patch) patch_.push_back(C::from_double(c));
    zn_pow_.resize(std::size_t{max_degree} + 1);
    minv_pow_.resize(std::size_t{max_degree} + 1);
  }

  [[nodiscard]] unsigned affine_dimension() const noexcept { return n_; }
  [[nodiscard]] unsigned dimension() const noexcept { return n_ + 1; }
  [[nodiscard]] const std::vector<unsigned>& degrees() const noexcept {
    return degrees_;
  }
  [[nodiscard]] const std::vector<C>& patch() const noexcept { return patch_; }

  /// The pullback point x = z / z_n the affine evaluators run at.
  void dehomogenize_into(std::span<const C> z, std::span<C> x) const {
    for (unsigned i = 0; i < n_; ++i) x[i] = z[i] / z[n_];
  }

  /// Lift affine values f(x) at x = z / z_n into the ROW-SCALED
  /// homogeneous rows: fhat[i] = (z_n / m)^{d_i} f_i(x) with
  /// m = ||z||_inf (prepare()'s scale).
  void lift_values(std::span<const C> z, std::span<const C> f_values,
                   std::span<C> fhat) const {
    prepare(z);
    for (unsigned i = 0; i < n_; ++i)
      fhat[i] = zn_pow_[degrees_[i]] * f_values[i];
  }

  /// Lift values and Jacobian (row-scaled); fhat_jac is n rows of n+1
  /// entries (row-major).  The value arithmetic repeats lift_values
  /// exactly, so full and values-only projective evaluations agree
  /// bitwise.
  void lift_full(std::span<const C> z, std::span<const C> x,
                 std::span<const C> f_values, std::span<const C> f_jac,
                 std::span<C> fhat, std::span<C> fhat_jac) const {
    prepare(z);
    const unsigned np1 = n_ + 1;
    for (unsigned i = 0; i < n_; ++i) {
      const unsigned d = degrees_[i];
      fhat[i] = zn_pow_[d] * f_values[i];
      // (z_n / m)^{d-1} / m: the scaled z_n^{d-1} of the Jacobian rows.
      const C zd1 = zn_pow_[d - 1] * minv_pow_[1];
      C dot{};
      for (unsigned j = 0; j < n_; ++j) {
        const C& fij = f_jac[std::size_t{i} * n_ + j];
        fhat_jac[std::size_t{i} * np1 + j] = zd1 * fij;
        dot += x[j] * fij;
      }
      const C euler =
          f_values[i] * prec::ScalarTraits<S>::from_double(static_cast<double>(d)) -
          dot;
      fhat_jac[std::size_t{i} * np1 + n_] = zd1 * euler;
    }
  }

  /// Row scale 1 / m^{d_i} applied to homogeneous row i (valid after a
  /// lift call prepared the point): the homogenized start rows must be
  /// scaled by exactly this before blending with the lifted target.
  [[nodiscard]] const S& row_scale(unsigned i) const {
    return minv_pow_[degrees_[i]];
  }

  /// Rescale z onto the patch: z <- z / (c . z).  Applied after every
  /// accepted corrector step (the renormalization cadence), it keeps
  /// the representative unique and the coordinates O(1) while t walks
  /// to 1.
  void renormalize(std::span<C> z) const {
    C dot{};
    for (unsigned j = 0; j <= n_; ++j) dot += patch_[j] * z[j];
    for (unsigned j = 0; j <= n_; ++j) z[j] = z[j] / dot;
  }

  /// The at-infinity measure: |z_n| relative to the largest affine
  /// coordinate (cheap 1-norms).  Small ratio = the point sits on the
  /// hyperplane at infinity.
  [[nodiscard]] double infinity_ratio(std::span<const C> z) const {
    double largest = 0.0;
    for (unsigned i = 0; i < n_; ++i)
      largest = std::max(largest,
                         prec::ScalarTraits<S>::to_double(cplx::norm1(z[i])));
    const double h = prec::ScalarTraits<S>::to_double(cplx::norm1(z[n_]));
    if (largest == 0.0) return std::numeric_limits<double>::infinity();
    return h / largest;
  }

 private:
  /// Per-point preparation (the shared one copy feeding both lift
  /// paths): the scale m = ||z||_inf in 1-norms, the inverse-scale
  /// powers minv_pow_[e] = (1/m)^e, and the scaled homogeneous-
  /// coordinate powers zn_pow_[e] = (z_n / m)^e, all by repeated
  /// multiplication.
  void prepare(std::span<const C> z) const {
    S m = cplx::norm1(z[0]);
    for (unsigned j = 1; j <= n_; ++j) {
      const S c = cplx::norm1(z[j]);
      if (c > m) m = c;
    }
    const S inv_m = S(1.0) / m;
    const C w = z[n_] * inv_m;
    minv_pow_[0] = S(1.0);
    zn_pow_[0] = C(S(1.0));
    for (std::size_t e = 1; e < zn_pow_.size(); ++e) {
      minv_pow_[e] = minv_pow_[e - 1] * inv_m;
      zn_pow_[e] = zn_pow_[e - 1] * w;
    }
  }

  unsigned n_;
  std::vector<unsigned> degrees_;
  std::vector<C> patch_;
  mutable std::vector<C> zn_pow_;    ///< (z_n / m)^e
  mutable std::vector<S> minv_pow_;  ///< (1 / m)^e
};

/// The one copy of the projective H(z, t) assembly: rows i < n blend
/// the row-scaled homogenized start row with the row-scaled lifted
/// target row, row n is the (t-independent) patch row carried by the
/// patched start system.  f_values/f_jac are the affine target's
/// evaluation at x = z / z_n; s_values/s_jac the patched homogenized
/// start system's at z.  fhat/ghat record the scaled lifts (Davidenko
/// inputs).
template <prec::RealScalar S>
void assemble_projective(const ProjectiveSystem<S>& ps,
                         const cplx::Complex<S>& gamma, const cplx::Complex<S>& t,
                         std::span<const cplx::Complex<S>> z,
                         std::span<const cplx::Complex<S>> x,
                         std::span<const cplx::Complex<S>> f_values,
                         std::span<const cplx::Complex<S>> f_jac,
                         std::span<const cplx::Complex<S>> s_values,
                         std::span<const cplx::Complex<S>> s_jac,
                         std::span<cplx::Complex<S>> fhat,
                         std::span<cplx::Complex<S>> ghat,
                         std::span<cplx::Complex<S>> fhat_jac,
                         std::span<cplx::Complex<S>> h_values,
                         std::span<cplx::Complex<S>> h_jac) {
  const unsigned n = ps.affine_dimension();
  const unsigned np1 = n + 1;
  ps.lift_full(z, x, f_values, f_jac, fhat, fhat_jac);
  const GammaBlend<S> blend(gamma, t);
  for (unsigned i = 0; i < n; ++i) {
    const S& scale = ps.row_scale(i);
    ghat[i] = s_values[i] * scale;
    h_values[i] = blend.combine(ghat[i], fhat[i]);
    for (unsigned j = 0; j < np1; ++j)
      h_jac[std::size_t{i} * np1 + j] =
          blend.combine(s_jac[std::size_t{i} * np1 + j] * scale,
                        fhat_jac[std::size_t{i} * np1 + j]);
  }
  h_values[n] = s_values[n];
  for (unsigned j = 0; j < np1; ++j)
    h_jac[std::size_t{n} * np1 + j] = s_jac[std::size_t{n} * np1 + j];
}

/// Values-only assembly; bitwise equal to assemble_projective's values
/// (same lift, same scaling, same blend, same patch row).
template <prec::RealScalar S>
void assemble_projective_values(const ProjectiveSystem<S>& ps,
                                const cplx::Complex<S>& gamma,
                                const cplx::Complex<S>& t,
                                std::span<const cplx::Complex<S>> z,
                                std::span<const cplx::Complex<S>> f_values,
                                std::span<const cplx::Complex<S>> s_values,
                                std::span<cplx::Complex<S>> fhat,
                                std::span<cplx::Complex<S>> h_values) {
  const unsigned n = ps.affine_dimension();
  ps.lift_values(z, f_values, fhat);
  const GammaBlend<S> blend(gamma, t);
  for (unsigned i = 0; i < n; ++i)
    h_values[i] = blend.combine(s_values[i] * ps.row_scale(i), fhat[i]);
  h_values[n] = s_values[n];
}

}  // namespace detail

/// Scalar projective homotopy: an Evaluator of dimension n+1 over the
/// patch, with the affine target running on any device or CPU
/// evaluator.  Mirrors Homotopy's interface (set_t / evaluate /
/// dt_from_last) plus the projective hooks the tracker keys on
/// (renormalize / infinity_ratio).
template <prec::RealScalar S, class EvalF>
class ProjectiveHomotopy {
  using C = cplx::Complex<S>;

 public:
  /// `f` evaluates `target` (affine, n-dimensional); `start_system` is
  /// homogenized to the target's degrees and patched internally.
  ProjectiveHomotopy(EvalF& f, const poly::PolynomialSystem& target,
                     const poly::PolynomialSystem& start_system,
                     cplx::Complex<double> gamma,
                     std::span<const cplx::Complex<double>> patch)
      : f_(f),
        ps_(target, patch),
        g_(homogenize(start_system, patch)),
        gamma_(C::from_double(gamma)),
        f_eval_(target.dimension()),
        s_eval_(target.dimension() + 1) {
    if (f.dimension() != target.dimension())
      throw std::invalid_argument("ProjectiveHomotopy: dimension mismatch");
    if (start_system.degrees() != target.degrees())
      throw std::invalid_argument(
          "ProjectiveHomotopy: start system degrees must match the target's");
    const unsigned n = ps_.affine_dimension();
    x_.resize(n);
    fhat_.resize(n);
    ghat_.resize(n);
    fhat_jac_.resize(std::size_t{n} * (n + 1));
  }

  [[nodiscard]] unsigned dimension() const noexcept { return ps_.dimension(); }
  [[nodiscard]] unsigned affine_dimension() const noexcept {
    return ps_.affine_dimension();
  }

  void set_t(const S& t) noexcept { t_ = C(t); }
  void set_t_complex(const C& t) noexcept { t_ = t; }
  [[nodiscard]] const C& t() const noexcept { return t_; }

  /// H(z, t) and its Jacobian in z at the current t.
  void evaluate(std::span<const C> z, poly::EvalResult<S>& out) {
    const unsigned n = ps_.affine_dimension();
    out.resize(n + 1);
    ps_.dehomogenize_into(z, std::span<C>(x_));
    f_.evaluate(std::span<const C>(x_), f_eval_);
    g_.evaluate(z, s_eval_);
    detail::assemble_projective<S>(
        ps_, gamma_, t_, z, std::span<const C>(x_),
        std::span<const C>(f_eval_.values), std::span<const C>(f_eval_.jacobian),
        std::span<const C>(s_eval_.values), std::span<const C>(s_eval_.jacobian),
        std::span<C>(fhat_), std::span<C>(ghat_), std::span<C>(fhat_jac_),
        std::span<C>(out.values), std::span<C>(out.jacobian));
  }

  /// dH/dt of the most recent evaluate(): rows i < n are the Davidenko
  /// right-hand side Fhat_i - gamma Ghat_i; the patch row is constant
  /// in t, so its entry is zero.
  [[nodiscard]] std::vector<C> dt_from_last() const {
    const unsigned n = ps_.affine_dimension();
    std::vector<C> out(n + 1);
    for (unsigned i = 0; i < n; ++i)
      out[i] = detail::davidenko_rhs(gamma_, fhat_[i], ghat_[i]);
    out[n] = C{};
    return out;
  }

  void renormalize(std::span<C> z) const { ps_.renormalize(z); }
  [[nodiscard]] double infinity_ratio(std::span<const C> z) const {
    return ps_.infinity_ratio(z);
  }
  [[nodiscard]] const detail::ProjectiveSystem<S>& projective_system() const noexcept {
    return ps_;
  }

 private:
  EvalF& f_;
  detail::ProjectiveSystem<S> ps_;
  ad::CpuEvaluator<S> g_;  ///< patched homogenized start system
  C gamma_;
  C t_{S(0.0)};
  poly::EvalResult<S> f_eval_;  ///< affine target at the pullback point
  poly::EvalResult<S> s_eval_;  ///< patched start system at z
  std::vector<C> x_;            ///< pullback point scratch
  std::vector<C> fhat_, ghat_;  ///< recorded lifts (Davidenko inputs)
  std::vector<C> fhat_jac_;     ///< lift Jacobian scratch
};

/// Batched projective homotopy: the lockstep tracker's counterpart of
/// BatchedHomotopy, evaluating a batch of patch points each at its own
/// complex t.  The affine target runs evaluate_range /
/// evaluate_values_range on the device at the pullback points; the
/// patched start system and the lift/blend run per point on the CPU,
/// repeating ProjectiveHomotopy's arithmetic exactly.
template <prec::RealScalar S, class TargetEval>
class BatchedProjectiveHomotopy {
  using C = cplx::Complex<S>;

 public:
  /// Marks this type as an externally-constructed batched homotopy for
  /// BatchPathTracker's generic constructor.
  using BatchedHomotopyTag = void;

  BatchedProjectiveHomotopy(TargetEval& f, const poly::PolynomialSystem& target,
                            const poly::PolynomialSystem& start_system,
                            cplx::Complex<double> gamma,
                            std::span<const cplx::Complex<double>> patch)
      : f_(f),
        ps_(target, patch),
        g_(homogenize(start_system, patch)),
        gamma_(C::from_double(gamma)),
        max_batch_(f.batch_capacity()),
        s_eval_(target.dimension() + 1),
        s_vals_(target.dimension() + 1) {
    if (f.dimension() != target.dimension())
      throw std::invalid_argument("BatchedProjectiveHomotopy: dimension mismatch");
    if (start_system.degrees() != target.degrees())
      throw std::invalid_argument(
          "BatchedProjectiveHomotopy: start system degrees must match the target's");
    const unsigned n = ps_.affine_dimension();
    x_pts_.resize(max_batch_);
    for (auto& p : x_pts_) p.resize(n);
    f_chunk_.resize(max_batch_);
    for (auto& r : f_chunk_) r.resize(n);
    f_values_.resize(max_batch_ * std::size_t{n});
    fhat_.resize(max_batch_ * std::size_t{n});
    ghat_.resize(max_batch_ * std::size_t{n});
    fhat_jac_.resize(std::size_t{n} * (n + 1));
    fhat_v_.resize(n);
  }

  [[nodiscard]] unsigned dimension() const noexcept { return ps_.dimension(); }
  [[nodiscard]] unsigned affine_dimension() const noexcept {
    return ps_.affine_dimension();
  }
  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

  /// H(z_{first+i}, ts_{first+i}) for i in [0, count), count <=
  /// max_batch(): chunk-local values (count*(n+1)) and row-major
  /// Jacobians (count*(n+1)^2), one device launch for the affine
  /// target.  Lifted target and start values are recorded per chunk
  /// slot for rhs_from_last.
  void evaluate_range(const std::vector<std::vector<C>>& points,
                      std::span<const C> ts, std::size_t first, std::size_t count,
                      std::span<C> values, std::span<C> jacobians) {
    const unsigned n = ps_.affine_dimension();
    const unsigned np1 = n + 1;
    const std::size_t nn1 = std::size_t{np1} * np1;
    if (count > max_batch_ || ts.size() < first + count ||
        values.size() < count * np1 || jacobians.size() < count * nn1)
      throw std::invalid_argument("BatchedProjectiveHomotopy: bad batch spans");

    for (std::size_t i = 0; i < count; ++i)
      ps_.dehomogenize_into(std::span<const C>(points[first + i]),
                            std::span<C>(x_pts_[i]));
    f_.evaluate_range(x_pts_, 0, count,
                      std::span<poly::EvalResult<S>>(f_chunk_).subspan(0, count));
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot = first + i;
      const auto z = std::span<const C>(points[slot]);
      g_.evaluate(z, s_eval_);
      detail::assemble_projective<S>(
          ps_, gamma_, ts[slot], z, std::span<const C>(x_pts_[i]),
          std::span<const C>(f_chunk_[i].values),
          std::span<const C>(f_chunk_[i].jacobian),
          std::span<const C>(s_eval_.values), std::span<const C>(s_eval_.jacobian),
          std::span<C>(fhat_).subspan(i * n, n),
          std::span<C>(ghat_).subspan(i * n, n), std::span<C>(fhat_jac_),
          values.subspan(i * np1, np1), jacobians.subspan(i * nn1, nn1));
    }
  }

  /// Values-only H, any count (the affine target walks max_batch-sized
  /// values-kernel launches).  Bitwise equal to evaluate_range's values.
  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::span<const C> ts, std::size_t first,
                             std::size_t count, std::span<C> values) {
    const unsigned n = ps_.affine_dimension();
    const unsigned np1 = n + 1;
    if (ts.size() < first + count || values.size() < count * np1)
      throw std::invalid_argument("BatchedProjectiveHomotopy: bad batch spans");

    for (std::size_t c0 = 0; c0 < count; c0 += max_batch_) {
      const std::size_t cnt = std::min(max_batch_, count - c0);
      for (std::size_t i = 0; i < cnt; ++i)
        ps_.dehomogenize_into(std::span<const C>(points[first + c0 + i]),
                              std::span<C>(x_pts_[i]));
      f_.evaluate_values_range(x_pts_, 0, cnt,
                               std::span<C>(f_values_).subspan(0, cnt * n));
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::size_t slot = c0 + i;
        const auto z = std::span<const C>(points[first + slot]);
        g_.evaluate_values(z, std::span<C>(s_vals_));
        detail::assemble_projective_values<S>(
            ps_, gamma_, ts[first + slot], z,
            std::span<const C>(f_values_).subspan(i * n, n),
            std::span<const C>(s_vals_), std::span<C>(fhat_v_),
            values.subspan(slot * np1, np1));
      }
    }
  }

  /// Davidenko right-hand side of chunk slot i of the most recent
  /// evaluate_range call; the patch row is zero.
  void rhs_from_last(std::size_t i, std::span<C> out) const {
    const unsigned n = ps_.affine_dimension();
    for (unsigned q = 0; q < n; ++q)
      out[q] = detail::davidenko_rhs(gamma_, fhat_[i * n + q], ghat_[i * n + q]);
    out[n] = C{};
  }

  void renormalize(std::span<C> z) const { ps_.renormalize(z); }
  [[nodiscard]] double infinity_ratio(std::span<const C> z) const {
    return ps_.infinity_ratio(z);
  }

 private:
  TargetEval& f_;
  detail::ProjectiveSystem<S> ps_;
  ad::CpuEvaluator<S> g_;  ///< patched homogenized start system
  C gamma_;
  std::size_t max_batch_;
  poly::EvalResult<S> s_eval_;             ///< per-point start scratch
  std::vector<C> s_vals_;                  ///< per-point values-only scratch
  std::vector<std::vector<C>> x_pts_;      ///< pullback chunk staging
  std::vector<poly::EvalResult<S>> f_chunk_;  ///< affine device chunk results
  std::vector<C> f_values_;                ///< affine values-only staging
  std::vector<C> fhat_, ghat_;             ///< last full eval lifts, per slot
  std::vector<C> fhat_jac_;                ///< per-point lift Jacobian scratch
  std::vector<C> fhat_v_;                  ///< values-only lift scratch
};

}  // namespace polyeval::homotopy
