#pragma once

/// \file tracker.hpp
/// Adaptive predictor-corrector path tracking along the homotopy from
/// t = 0 to t = 1: Euler predictor on the Davidenko equation
/// J_h dx/dt = -dh/dt, Newton corrector at the advanced t, step halving
/// on corrector failure and growth after consecutive successes.
///
/// Two geometries share this tracker.  Over an affine Homotopy it is
/// the classic tracker: paths that diverge to infinity stall just short
/// of t = 1 and report kStalled.  Over a ProjectiveHomotopy (detected
/// by the renormalize() hook) it tracks in the patch c . z = 1 with
/// per-step renormalization, retires paths whose homogeneous coordinate
/// vanishes as kAtInfinity, and answers the t -> 1 stall signature with
/// the Cauchy endgame (endgame.hpp) -- so every path terminates with a
/// classified endpoint.
///
/// The step-control arithmetic lives in ONE copy (detail::StepState and
/// friends), shared with the lockstep BatchPathTracker so the two
/// trackers' bitwise contract holds by construction.

#include <type_traits>

#include "homotopy/endgame.hpp"
#include "homotopy/homotopy.hpp"

namespace polyeval::homotopy {

struct TrackOptions {
  double initial_step = 0.05;
  double min_step = 1e-8;
  double max_step = 0.2;
  double step_growth = 1.5;
  double step_shrink = 0.5;
  unsigned growth_after = 3;           ///< consecutive successes before growing
  unsigned corrector_iterations = 4;   ///< Newton steps per corrector call
  double corrector_tolerance = 1e-9;   ///< residual target during tracking
  unsigned max_steps = 10000;
  double end_tolerance = 1e-12;        ///< residual target of the final refine
  unsigned end_iterations = 10;        ///< Newton steps at t = 1
  /// Projective mode: |z_n| / max|z_i| below this classifies the point
  /// as lying on the hyperplane at infinity.  At 1e-4 a dehomogenized
  /// endpoint would have coordinates beyond 1e4 -- for the degree-15+
  /// rows of the paper's workloads, z_n^d is then far below double
  /// resolution, i.e. the homogeneous system cannot distinguish the
  /// point from the hyperplane at infinity.
  double at_infinity_tolerance = 1e-4;
  EndgameOptions endgame;              ///< Cauchy endgame knobs (projective)

  /// Memberwise equality: the solve service coalesces paths of
  /// different requests into shared lockstep rounds only when their
  /// TrackOptions compare equal (the hash is just a bucket key).
  friend bool operator==(const TrackOptions&, const TrackOptions&) = default;
};

/// Classified endpoint of one tracked path.
enum class PathStatus : unsigned char {
  kConverged,   ///< finite solution: final residual <= end_tolerance
  kAtInfinity,  ///< projective endpoint with vanishing homogeneous coordinate
  kStalled,     ///< step control died before t = 1 (underflow / max_steps)
  kDiverged,    ///< reached t = 1 but the endpoint failed the residual test
  kCancelled,   ///< retired by cooperative cancellation or a missed deadline
};

/// The ONE spelling of each status, shared by benches, dumps and the
/// service's report surface.
[[nodiscard]] constexpr const char* to_string(PathStatus s) noexcept {
  switch (s) {
    case PathStatus::kConverged: return "converged";
    case PathStatus::kAtInfinity: return "at_infinity";
    case PathStatus::kStalled: return "stalled";
    case PathStatus::kDiverged: return "diverged";
    case PathStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

template <prec::RealScalar S>
struct TrackResult {
  PathStatus status = PathStatus::kStalled;
  bool success = false;      ///< status == kConverged (legacy consumers)
  std::vector<cplx::Complex<S>> solution;
  unsigned steps = 0;        ///< accepted predictor-corrector steps
  unsigned rejections = 0;   ///< halved steps
  unsigned winding = 0;      ///< endgame winding number (0 = endgame not run)
  double final_residual = 0.0;
  double t_reached = 0.0;

  /// Solved in the classification sense: a finite root or a certified
  /// point at infinity (the solved-paths numerator of bench_tracking).
  [[nodiscard]] bool classified() const noexcept {
    return status == PathStatus::kConverged || status == PathStatus::kAtInfinity;
  }
};

namespace detail {

/// The ONE copy of the adaptive step-control arithmetic, shared by the
/// scalar and lockstep trackers (their bitwise contract): per-path
/// state plus the clamp / accept / reject transitions.
struct StepState {
  double t = 0.0;
  double step = 0.0;
  unsigned streak = 0;
  unsigned steps = 0;
  unsigned rejections = 0;
  /// Step threshold below which the endgame (re-)arms; halved after
  /// every failed endgame attempt so retries circle at smaller radii
  /// (the first attempt often fires while other paths' branch points
  /// still sit inside the circle).
  double endgame_rearm = 0.0;
};

/// The shared initial state of a path's step controller.
[[nodiscard]] inline StepState initial_step_state(const TrackOptions& o) {
  StepState s;
  s.step = o.initial_step;
  s.endgame_rearm = o.endgame.trigger_step;
  return s;
}

/// Step length clamped to the remaining parameter interval.
[[nodiscard]] inline double clamped_dt(const StepState& s) {
  const double rest = 1.0 - s.t;
  return s.step < rest ? s.step : rest;
}

/// The parameter the step lands on: t + dt, clamped so the corrector is
/// never asked to evaluate past t = 1 (the former code added first and
/// clamped only the stored result, letting the last step's corrector
/// run at t > 1 when t + (1 - t) rounded up).
[[nodiscard]] inline double step_target(const StepState& s, double dt) {
  const double next = s.t + dt;
  return next > 1.0 ? 1.0 : next;
}

/// Accept the corrector step onto `t_next` (a step_target value): count
/// it and grow the step after growth_after consecutive successes.
inline void accept_step(StepState& s, double t_next, const TrackOptions& o) {
  s.t = t_next;
  ++s.steps;
  if (++s.streak >= o.growth_after) {
    s.step = std::min(s.step * o.step_growth, o.max_step);
    s.streak = 0;
  }
}

/// Reject the step: count it, reset the growth streak (a rejection must
/// restart the consecutive-success count), shrink the step.
inline void reject_step(StepState& s, const TrackOptions& o) {
  ++s.rejections;
  s.streak = 0;
  s.step *= o.step_shrink;
}

/// The projective stall signature arming the Cauchy endgame: rejected
/// down to a tiny step while already close to t = 1.
[[nodiscard]] inline bool endgame_triggered(const StepState& s,
                                            const TrackOptions& o) {
  return o.endgame.enabled && s.t >= o.endgame.trigger_t &&
         s.step < s.endgame_rearm;
}

/// Book a failed endgame attempt: the next arming needs the step to
/// fall below half the current one, so the retry circles a smaller
/// radius (tracking meanwhile creeps t closer to 1).
inline void endgame_failed(StepState& s) { s.endgame_rearm = s.step * 0.5; }

/// The ONE copy of the projective endpoint residual acceptance at
/// t = 1: end_tolerance, widened to the tracking corrector's tolerance
/// (singular endpoints keep an elevated Newton floor) and, for
/// endpoints the endgame extrapolated (winding > 0), to the endgame's
/// own sample tolerance.
[[nodiscard]] inline bool projective_endpoint_converged(double residual,
                                                        unsigned winding,
                                                        const TrackOptions& o) {
  double accept = std::max(o.end_tolerance, o.corrector_tolerance);
  if (winding > 0) accept = std::max(accept, o.endgame.corrector_tolerance);
  return residual <= accept;
}

/// Shared constructor-time validation of the tracking options.
inline void validate_track_options(const TrackOptions& o) {
  if (o.endgame.enabled && o.endgame.samples_per_loop == 0)
    throw std::invalid_argument(
        "TrackOptions: endgame.samples_per_loop must be >= 1");
}

/// Resolves PathTracker's homotopy type without eagerly instantiating
/// Homotopy<S, Homo, void> for the single-argument spelling.
template <class S, class EvalFOrHomo, class EvalG>
struct TrackerHomotopy {
  using type = Homotopy<S, EvalFOrHomo, EvalG>;
};
template <class S, class Homo>
struct TrackerHomotopy<S, Homo, void> {
  using type = Homo;
};

}  // namespace detail

/// Scalar path tracker.  Instantiate either as
/// PathTracker<S, EvalF, EvalG> over a Homotopy<S, EvalF, EvalG> (the
/// historical spelling) or as PathTracker<S, Homo> over any homotopy
/// type -- e.g. PathTracker<S, ProjectiveHomotopy<S, EvalF>>.
template <prec::RealScalar S, class EvalFOrHomo, class EvalG = void>
class PathTracker {
 public:
  using Homo = typename detail::TrackerHomotopy<S, EvalFOrHomo, EvalG>::type;

 private:
  using C = cplx::Complex<S>;
  static constexpr bool kProjective =
      requires(Homo& h, std::span<C> z) { h.renormalize(z); };

 public:
  PathTracker(Homo& homotopy, TrackOptions options = {})
      : h_(homotopy), options_(options) {
    detail::validate_track_options(options_);
  }

  /// Track one path from a start root of g (where h(x, 0) = 0); in
  /// projective mode the root must already be embedded in the patch.
  [[nodiscard]] TrackResult<S> track(std::span<const C> start) {
    const unsigned n = h_.dimension();
    TrackResult<S> result;
    result.solution.assign(start.begin(), start.end());

    detail::StepState st = detail::initial_step_state(options_);
    poly::EvalResult<S> eval(n);

    while (st.t < 1.0 && st.steps + st.rejections < options_.max_steps) {
      const double dt = detail::clamped_dt(st);
      const double t_next = detail::step_target(st, dt);

      // Predictor: Euler step along the Davidenko flow at (x, t).
      h_.set_t(S(st.t));
      h_.evaluate(std::span<const C>(result.solution), eval);
      auto jac = linalg::Matrix<S>::from_row_major(n, n, eval.jacobian);
      const auto rhs = h_.dt_from_last();
      auto flow = linalg::lu_solve(std::move(jac), std::span<const C>(rhs));
      std::vector<C> predicted = result.solution;
      if (flow) {
        const S h_dt(dt);
        for (unsigned i = 0; i < n; ++i) predicted[i] -= (*flow)[i] * h_dt;
      }
      // A singular Jacobian mid-path leaves the predictor at the current
      // point; the corrector then decides whether the step is viable.

      // Corrector: Newton at the (clamped) advanced t.
      h_.set_t(S(t_next));
      newton::NewtonOptions copts;
      copts.max_iterations = options_.corrector_iterations;
      copts.residual_tolerance = options_.corrector_tolerance;
      auto corrected = newton::refine<S>(h_, std::span<const C>(predicted), copts);

      if (corrected.converged) {
        result.solution = std::move(corrected.solution);
        detail::accept_step(st, t_next, options_);
        if constexpr (kProjective) {
          h_.renormalize(std::span<C>(result.solution));
          if (h_.infinity_ratio(std::span<const C>(result.solution)) <
              options_.at_infinity_tolerance) {
            // The homogeneous coordinate collapsed mid-track: a
            // certified point at infinity, reported with the accepting
            // corrector's residual.
            result.status = PathStatus::kAtInfinity;
            result.final_residual = corrected.final_residual;
            finish(result, st);
            return result;
          }
        }
      } else {
        detail::reject_step(st, options_);
        if constexpr (kProjective) {
          if (detail::endgame_triggered(st, options_)) {
            if (run_endgame(result, st)) return result;
            // Failed attempt (lost sample or no closure): the path was
            // restored to the theta = 0 point; keep tracking and
            // re-arm at a smaller radius.
            detail::endgame_failed(st);
          }
        }
        if (st.step < options_.min_step) break;
      }
    }

    if (st.t >= 1.0) {
      classify_at_end(result, st);
      return result;
    }

    // Paths dying mid-track (step underflow, max_steps) still report
    // the residual of where they stopped; in projective mode a stop
    // point already sitting on the hyperplane at infinity is a
    // classified endpoint, not a stall.
    h_.set_t(S(st.t));
    h_.evaluate(std::span<const C>(result.solution), eval);
    result.status = PathStatus::kStalled;
    if constexpr (kProjective) {
      if (h_.infinity_ratio(std::span<const C>(result.solution)) <
          options_.at_infinity_tolerance)
        result.status = PathStatus::kAtInfinity;
    }
    result.final_residual = linalg::max_norm_d<S>(eval.values);
    finish(result, st);
    return result;
  }

 private:
  /// Copy the step-control tallies into the result.
  void finish(TrackResult<S>& result, const detail::StepState& st) {
    result.steps = st.steps;
    result.rejections = st.rejections;
    result.t_reached = st.t;
    result.success = result.status == PathStatus::kConverged;
  }

  /// Endgame phase at t = 1: polish the endpoint, then classify from
  /// the kept point -- at-infinity first (projective), then the final
  /// residual check against end_tolerance (NOT the polish's converged
  /// flag alone, so an endpoint that already satisfies the tolerance
  /// without polish counts as converged).
  void classify_at_end(TrackResult<S>& result, detail::StepState& st) {
    h_.set_t(S(1.0));
    newton::NewtonOptions eopts;
    eopts.max_iterations = options_.end_iterations;
    eopts.residual_tolerance = options_.end_tolerance;
    auto polished =
        newton::refine<S>(h_, std::span<const C>(result.solution), eopts);
    if (polished.converged) {
      result.solution = std::move(polished.solution);
      result.final_residual = polished.final_residual;
    } else {
      // A diverged polish must not replace the tracked point with a
      // worse iterate: keep the pre-polish point and report ITS
      // residual at t = 1 (the polish's entry probe).
      result.final_residual = polished.residual_history.front();
    }
    if constexpr (kProjective) {
      if (h_.infinity_ratio(std::span<const C>(result.solution)) <
          options_.at_infinity_tolerance) {
        result.status = PathStatus::kAtInfinity;
        finish(result, st);
        return;
      }
      result.status = detail::projective_endpoint_converged(
                          result.final_residual, result.winding, options_)
                          ? PathStatus::kConverged
                          : PathStatus::kDiverged;
      finish(result, st);
      return;
    }
    result.status = result.final_residual <= options_.end_tolerance
                        ? PathStatus::kConverged
                        : PathStatus::kDiverged;
    finish(result, st);
  }

  /// One Cauchy endgame attempt (projective only): circle t around 1
  /// at radius 1 - t, one corrector solve per sample, until the loop
  /// closes; the sample mean is the endpoint, handed to the t = 1
  /// classification (returns true -- the path is classified).  A lost
  /// sample or a loop that never closes fails the attempt: the path is
  /// restored to the theta = 0 point and returns false so tracking can
  /// creep closer to t = 1 and retry at a smaller radius.
  bool run_endgame(TrackResult<S>& result, detail::StepState& st)
    requires kProjective
  {
    endgame_.reserve(h_.dimension());
    endgame_.begin(1.0 - st.t, std::span<const C>(result.solution));
    newton::NewtonOptions copts;
    copts.max_iterations = options_.endgame.corrector_iterations;
    copts.residual_tolerance = options_.endgame.corrector_tolerance;
    for (;;) {
      h_.set_t_complex(endgame_.next_t(options_.endgame));
      auto corrected =
          newton::refine<S>(h_, std::span<const C>(result.solution), copts);
      if (!corrected.converged) break;  // lost the circle at this radius
      result.solution = std::move(corrected.solution);
      const auto step =
          endgame_.absorb(std::span<const C>(result.solution), options_.endgame);
      if (step == CauchyEndgame<S>::Step::kClosed) {
        endgame_.endpoint(std::span<C>(result.solution));
        result.winding = endgame_.winding();
        st.t = 1.0;
        classify_at_end(result, st);
        return true;
      }
      if (step == CauchyEndgame<S>::Step::kExhausted) break;  // no closure
    }
    const auto z0 = endgame_.start_point();
    std::copy(z0.begin(), z0.end(), result.solution.begin());
    return false;
  }

  Homo& h_;
  TrackOptions options_;
  CauchyEndgame<S> endgame_;
};

}  // namespace polyeval::homotopy
