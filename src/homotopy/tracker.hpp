#pragma once

/// \file tracker.hpp
/// Adaptive predictor-corrector path tracking along the homotopy from
/// t = 0 to t = 1: Euler predictor on the Davidenko equation
/// J_h dx/dt = -dh/dt, Newton corrector at the advanced t, step halving
/// on corrector failure and growth after consecutive successes.

#include "homotopy/homotopy.hpp"

namespace polyeval::homotopy {

struct TrackOptions {
  double initial_step = 0.05;
  double min_step = 1e-8;
  double max_step = 0.2;
  double step_growth = 1.5;
  double step_shrink = 0.5;
  unsigned growth_after = 3;           ///< consecutive successes before growing
  unsigned corrector_iterations = 4;   ///< Newton steps per corrector call
  double corrector_tolerance = 1e-9;   ///< residual target during tracking
  unsigned max_steps = 10000;
  double end_tolerance = 1e-12;        ///< residual target of the final refine
  unsigned end_iterations = 10;        ///< Newton steps at t = 1
};

template <prec::RealScalar S>
struct TrackResult {
  bool success = false;
  std::vector<cplx::Complex<S>> solution;
  unsigned steps = 0;        ///< accepted predictor-corrector steps
  unsigned rejections = 0;   ///< halved steps
  double final_residual = 0.0;
  double t_reached = 0.0;
};

template <prec::RealScalar S, class EvalF, class EvalG>
class PathTracker {
  using C = cplx::Complex<S>;

 public:
  PathTracker(Homotopy<S, EvalF, EvalG>& homotopy, TrackOptions options = {})
      : h_(homotopy), options_(options) {}

  /// Track one path from a start root of g (where h(x, 0) = 0).
  [[nodiscard]] TrackResult<S> track(std::span<const C> start) {
    const unsigned n = h_.dimension();
    TrackResult<S> result;
    result.solution.assign(start.begin(), start.end());

    double t = 0.0;
    double step = options_.initial_step;
    unsigned streak = 0;
    poly::EvalResult<S> eval(n);

    while (t < 1.0 && result.steps + result.rejections < options_.max_steps) {
      const double dt = std::min(step, 1.0 - t);

      // Predictor: Euler step along the Davidenko flow at (x, t).
      h_.set_t(S(t));
      h_.evaluate(std::span<const C>(result.solution), eval);
      auto jac = linalg::Matrix<S>::from_row_major(n, n, eval.jacobian);
      const auto rhs = h_.dt_from_last();
      auto flow = linalg::lu_solve(std::move(jac), std::span<const C>(rhs));
      std::vector<C> predicted = result.solution;
      if (flow) {
        const S h_dt(dt);
        for (unsigned i = 0; i < n; ++i) predicted[i] -= (*flow)[i] * h_dt;
      }
      // A singular Jacobian mid-path leaves the predictor at the current
      // point; the corrector then decides whether the step is viable.

      // Corrector: Newton at t + dt.
      h_.set_t(S(t + dt));
      newton::NewtonOptions copts;
      copts.max_iterations = options_.corrector_iterations;
      copts.residual_tolerance = options_.corrector_tolerance;
      auto corrected = newton::refine<S>(h_, std::span<const C>(predicted), copts);

      if (corrected.converged) {
        result.solution = std::move(corrected.solution);
        t += dt;
        ++result.steps;
        if (++streak >= options_.growth_after) {
          step = std::min(step * options_.step_growth, options_.max_step);
          streak = 0;
        }
      } else {
        ++result.rejections;
        streak = 0;
        step *= options_.step_shrink;
        if (step < options_.min_step) break;
      }
    }
    result.t_reached = t;

    if (t >= 1.0) {
      // Endgame: polish the root of f itself (t = 1).
      h_.set_t(S(1.0));
      newton::NewtonOptions eopts;
      eopts.max_iterations = options_.end_iterations;
      eopts.residual_tolerance = options_.end_tolerance;
      auto polished =
          newton::refine<S>(h_, std::span<const C>(result.solution), eopts);
      if (polished.converged) {
        result.solution = std::move(polished.solution);
        result.final_residual = polished.final_residual;
      } else {
        // A diverged polish must not replace the tracked point with a
        // worse iterate: keep the pre-polish point and report ITS
        // residual at t = 1 (the polish's entry probe).
        result.final_residual = polished.residual_history.front();
      }
      result.success = polished.converged;
    } else {
      // Paths dying mid-track (step underflow, max_steps) still report
      // the residual of where they stopped.
      h_.set_t(S(t));
      h_.evaluate(std::span<const C>(result.solution), eval);
      result.final_residual = linalg::max_norm_d<S>(eval.values);
    }
    return result;
  }

 private:
  Homotopy<S, EvalF, EvalG>& h_;
  TrackOptions options_;
};

}  // namespace polyeval::homotopy
