#include "homotopy/start_system.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace polyeval::homotopy {

namespace {

poly::PolynomialSystem build_start(const std::vector<unsigned>& degrees) {
  const unsigned n = static_cast<unsigned>(degrees.size());
  std::vector<poly::Polynomial> polys;
  polys.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    std::vector<poly::Monomial> monos;
    monos.emplace_back(cplx::Complex<double>{1.0, 0.0},
                       std::vector<poly::VarPower>{{i, degrees[i]}});
    monos.emplace_back(cplx::Complex<double>{-1.0, 0.0}, std::vector<poly::VarPower>{});
    polys.emplace_back(n, std::move(monos));
  }
  return poly::PolynomialSystem(std::move(polys));
}

}  // namespace

TotalDegreeStart::TotalDegreeStart(const poly::PolynomialSystem& target)
    : degrees_(target.degrees()), num_paths_(1), system_(build_start(degrees_)) {
  for (const unsigned d : degrees_)
    if (d == 0)
      throw std::invalid_argument("TotalDegreeStart: zero-degree polynomial in target");
  // Bezout numbers overflow 64 bits well inside the paper's dimension
  // range (e.g. 18^32); saturate instead of silently wrapping to a
  // tiny path count.  start_root stays valid for any index below the
  // saturated bound (the mixed-radix digits wrap per coordinate).
  for (const unsigned d : degrees_) {
    if (num_paths_ > std::numeric_limits<std::uint64_t>::max() / d) {
      num_paths_ = std::numeric_limits<std::uint64_t>::max();
      break;
    }
    num_paths_ *= d;
  }
}

std::vector<cplx::Complex<double>> TotalDegreeStart::start_root(
    std::uint64_t path) const {
  if (path >= num_paths_) throw std::out_of_range("TotalDegreeStart: path index");
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  std::vector<cplx::Complex<double>> root;
  root.reserve(degrees_.size());
  for (const unsigned d : degrees_) {
    const auto digit = static_cast<double>(path % d);
    path /= d;
    const double angle = kTwoPi * digit / static_cast<double>(d);
    root.push_back({std::cos(angle), std::sin(angle)});
  }
  return root;
}

}  // namespace polyeval::homotopy
