#pragma once

/// \file homogenize.hpp
/// Homogenization of a target system with an extra coordinate plus a
/// random patch hyperplane -- the projective substrate of the tracker's
/// at-infinity classification.  Each polynomial f_i of degree d_i lifts
/// to F_i(z) = z_n^{d_i} f_i(z_0/z_n, ..., z_{n-1}/z_n), a homogeneous
/// polynomial in n+1 variables whose roots with z_n = 0 are exactly the
/// target's solutions at infinity; the affine chart is fixed by the
/// patch hyperplane c . z = 1 (random unit-modulus c, so the patch
/// misses every solution with probability one).
///
/// The explicit homogenized PolynomialSystem built here is the *oracle*
/// (tests evaluate it naively); the trackers never expand it -- they
/// evaluate the affine target on the device and lift values/Jacobians by
/// powers of z_n (projective.hpp), which keeps the paper's uniform
/// structure (n, m, k, d) intact for the fused kernels.

#include <cstdint>
#include <span>

#include "poly/system.hpp"

namespace polyeval::homotopy {

/// Homogenize one polynomial of `num_vars` variables to total degree
/// `degree` (>= its own degree) with the extra variable z_{num_vars}:
/// every monomial of total degree tau gains the factor
/// z_{num_vars}^{degree - tau}.
[[nodiscard]] poly::Polynomial homogenize_polynomial(const poly::Polynomial& p,
                                                     unsigned degree);

/// Random unit-modulus patch coefficients c over `dimension` coordinates
/// (seeded, deterministic): the hyperplane c . z = 1.
[[nodiscard]] std::vector<cplx::Complex<double>> random_patch(unsigned dimension,
                                                              std::uint64_t seed);

/// The patch hyperplane as a polynomial: c_0 z_0 + ... + c_n z_n - 1.
[[nodiscard]] poly::Polynomial patch_polynomial(
    std::span<const cplx::Complex<double>> c);

/// The square projective system over n+1 variables: the n homogenized
/// target polynomials (each to its own total degree) plus the patch row
/// c . z = 1.  Roots with z_n = 0 are the target's solutions at
/// infinity; roots with z_n != 0 dehomogenize to affine target roots.
[[nodiscard]] poly::PolynomialSystem homogenize(const poly::PolynomialSystem& target,
                                                std::span<const cplx::Complex<double>> c);

/// Lift an affine point into the patch: z = (x, 1) scaled so c . z = 1.
/// Start roots enter projective tracking through this embedding (done
/// once, before sharding, so every shard sees identical start points).
template <prec::RealScalar S>
[[nodiscard]] std::vector<cplx::Complex<S>> embed_in_patch(
    std::span<const cplx::Complex<S>> x, std::span<const cplx::Complex<S>> c) {
  using C = cplx::Complex<S>;
  const std::size_t n = x.size();
  if (c.size() != n + 1)
    throw std::invalid_argument("embed_in_patch: patch has wrong dimension");
  std::vector<C> z(x.begin(), x.end());
  z.push_back(C(S(1.0)));
  C dot{};
  for (std::size_t i = 0; i <= n; ++i) dot += c[i] * z[i];
  for (auto& zi : z) zi = zi / dot;
  return z;
}

/// Affine chart of a projective point: x_i = z_i / z_n.  Meaningful only
/// for endpoints classified finite (z_n bounded away from zero).
template <prec::RealScalar S>
[[nodiscard]] std::vector<cplx::Complex<S>> dehomogenize(
    std::span<const cplx::Complex<S>> z) {
  using C = cplx::Complex<S>;
  if (z.size() < 2) throw std::invalid_argument("dehomogenize: point too short");
  const std::size_t n = z.size() - 1;
  std::vector<C> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = z[i] / z[n];
  return x;
}

}  // namespace polyeval::homotopy
