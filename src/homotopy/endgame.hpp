#pragma once

/// \file endgame.hpp
/// The Cauchy (integral-mean) endgame: when the step controller detects
/// the t -> 1 stall signature, stop shrinking the real step and instead
/// walk the path around circles t = 1 - r e^{i theta} of fixed radius
/// r = 1 - t.  The path z(t) is an analytic function of (1-t)^{1/w}
/// near t = 1 (w = the winding number of the endpoint), so
///
///   * the samples return to the theta = 0 start point after exactly w
///     loops -- counting loops until closure *measures* w, and
///   * the uniform sample mean over those w loops is the trapezoidal
///     Cauchy integral (1 / 2 pi w) * integral z dtheta = z(1), an
///     endpoint estimate whose quadrature error decays like r^N
///     (spectral accuracy of the periodic trapezoid rule),
///
/// which converts a stall just short of t = 1 into a classified
/// endpoint: a finite (possibly singular) root, or a point at infinity
/// when the homogeneous coordinate of the extrapolation vanishes.
///
/// This class is the ONE copy of the endgame state arithmetic (sample
/// parameter, Cauchy sum, closure test, winding count, endpoint mean),
/// shared by the scalar tracker (which drives it with newton::refine)
/// and the lockstep batch tracker (newton::refine_batch, one sample per
/// round for every endgame path in a single whole-set launch) -- so the
/// per-path trajectories agree bit for bit by construction.

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "cplx/complex.hpp"

namespace polyeval::homotopy {

struct EndgameOptions {
  bool enabled = true;
  /// Stall signature: the endgame fires when a corrector rejection
  /// leaves the path at t >= trigger_t with step < trigger_step.
  double trigger_t = 0.9;
  double trigger_step = 1e-3;
  unsigned samples_per_loop = 16;
  unsigned max_windings = 8;
  /// Newton budget per circle sample.  Near a singular endpoint the
  /// corrector converges only linearly, so the circle correctors get a
  /// deeper budget than the tracking corrector's few-step probe.
  unsigned corrector_iterations = 16;
  /// Residual target per circle sample: looser than the tracking
  /// corrector's, because sample accuracy only feeds the Cauchy mean
  /// (whose quadrature error dominates) and the singular endpoints the
  /// endgame exists for have an elevated Newton residual floor.
  double corrector_tolerance = 1e-8;
  /// Loop closure: the sample after a full loop must return to the
  /// theta = 0 start point within this max-norm distance.  Distinct
  /// branches of a winding-w endpoint are O(r^{1/w}) apart, far above
  /// the corrector's noise floor, so the test is not delicate.
  double closure_tolerance = 1e-6;

  /// Memberwise equality, so TrackOptions (which embeds this) can be a
  /// coalescing key in the solve service.
  friend bool operator==(const EndgameOptions&, const EndgameOptions&) = default;
};

template <prec::RealScalar S>
class CauchyEndgame {
  using C = cplx::Complex<S>;

 public:
  /// Size the state for points of `dimension` coordinates (done once at
  /// construction time in the batch tracker's slots: begin()/absorb()
  /// never allocate after this).
  void reserve(unsigned dimension) {
    start_.resize(dimension);
    sum_.resize(dimension);
  }

  /// Arm the endgame at the stalled point `z` (the theta = 0 sample)
  /// with circle radius `radius` = 1 - t.
  void begin(double radius, std::span<const C> z) {
    radius_ = radius;
    samples_ = 0;
    winding_ = 0;
    std::copy(z.begin(), z.end(), start_.begin());
    std::fill(sum_.begin(), sum_.end(), C{});
  }

  /// Complex tracking parameter of the NEXT sample:
  /// t = 1 - r e^{i theta} at theta = 2 pi (samples + 1) / N.
  [[nodiscard]] C next_t(const EndgameOptions& options) const {
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    const double theta = kTwoPi * static_cast<double>(samples_ + 1) /
                         static_cast<double>(options.samples_per_loop);
    return C::from_double(
        {1.0 - radius_ * std::cos(theta), -radius_ * std::sin(theta)});
  }

  enum class Step {
    kContinue,   ///< keep circling
    kClosed,     ///< returned to the start point: winding() is set
    kExhausted,  ///< max_windings loops without closure
  };

  /// Absorb the corrected sample at next_t(): accumulate the Cauchy sum
  /// and, on each completed loop, run the closure test.
  Step absorb(std::span<const C> z, const EndgameOptions& options) {
    for (std::size_t i = 0; i < sum_.size(); ++i) sum_[i] += z[i];
    ++samples_;
    if (samples_ % options.samples_per_loop != 0) return Step::kContinue;
    double dist = 0.0;
    for (std::size_t i = 0; i < start_.size(); ++i)
      dist = std::max(dist, cplx::max_abs_diff(z[i], start_[i]));
    if (dist <= options.closure_tolerance) {
      winding_ = samples_ / options.samples_per_loop;
      return Step::kClosed;
    }
    if (samples_ / options.samples_per_loop >= options.max_windings)
      return Step::kExhausted;
    return Step::kContinue;
  }

  /// Winding number measured by the closure test (loops until return).
  [[nodiscard]] unsigned winding() const noexcept { return winding_; }
  [[nodiscard]] double radius() const noexcept { return radius_; }

  /// The theta = 0 point the endgame was armed at: a failed attempt
  /// (lost sample, no closure) restores the path here and resumes real
  /// tracking, to re-arm later at a smaller radius.
  [[nodiscard]] std::span<const C> start_point() const noexcept {
    return std::span<const C>(start_);
  }

  /// The Cauchy integral mean over all absorbed samples: the endpoint
  /// estimate z(1).  Call after absorb() returned kClosed.
  void endpoint(std::span<C> out) const {
    const S scale =
        prec::ScalarTraits<S>::from_double(1.0 / static_cast<double>(samples_));
    for (std::size_t i = 0; i < sum_.size(); ++i) out[i] = sum_[i] * scale;
  }

 private:
  double radius_ = 0.0;
  unsigned samples_ = 0;
  unsigned winding_ = 0;
  std::vector<C> start_;  ///< the theta = 0 point (closure reference)
  std::vector<C> sum_;    ///< running Cauchy sum
};

}  // namespace polyeval::homotopy
