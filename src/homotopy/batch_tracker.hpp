#pragma once

/// \file batch_tracker.hpp
/// Lockstep batched path tracking: advance ALL live paths of a shard one
/// predictor-corrector step per round, with every stage that touches the
/// target system batched into single device launches -- the follow-on
/// the paper's lineage builds (Verschelde & Yu's batched GPU Newton,
/// Chen's GPU path tracker), and the workload the fused one-block-per-
/// point schedule was designed for.  Where the per-path tracker feeds
/// the device one point per corrector launch (a grid of one block), a
/// round here launches:
///
///   * one full batch evaluation for every live path's predictor
///     (Jacobian + Davidenko right-hand side),
///   * one values-only batch per corrector residual probe and one full
///     batch per corrector Jacobian step, over the still-unconverged
///     subset (newton::refine_batch's masks),
///   * one corrector batch advancing every endgame path one Cauchy
///     circle sample (projective mode),
///   * one values-only batch retiring the round's dead paths with their
///     final residuals,
///
/// while each path keeps its own adaptive state (t, step size, growth
/// streak, rejection count) exactly as the scalar tracker would have it,
/// and retired paths -- classified endpoints, at-infinity retirements,
/// step-underflow and max-step failures -- are compacted out of the
/// active set between rounds.
///
/// Geometries: instantiated over a target evaluator the tracker builds
/// the affine BatchedHomotopy itself (the historical spelling);
/// instantiated over an externally built batched homotopy (the
/// BatchedHomotopyTag) it tracks whatever that homotopy models -- the
/// projective patch with renormalization, at-infinity classification
/// and the lockstep Cauchy endgame when the homotopy provides the
/// renormalize() hook.
///
/// Bitwise contract: a path's trajectory is IDENTICAL to
/// PathTracker::track over the same evaluators and geometry.  Every
/// ingredient holds bit for bit: the fused evaluators' per-point batch
/// independence, the values kernel's equality with full-evaluation
/// values, LuArena's equality with lu_solve, the shared step-control
/// and endgame state arithmetic (tracker.hpp, endgame.hpp), and this
/// file repeating the scalar tracker's control flow verbatim.  Only the
/// SCHEDULE changes -- which is why the lockstep tracker may
/// default-replace the per-path mode in track_paths_sharded while the
/// parity tests compare the two.
///
/// Zero allocation: all per-path state, batch staging, Newton scratch,
/// endgame accumulators and LU slots are sized in the constructor for
/// `max_paths`; steady-state round() calls never touch the allocator
/// (the device log is cleared -- capacity kept -- at each round's
/// start, the long-running-caller convention).

#include <algorithm>
#include <limits>
#include <mutex>

#include "ad/cpu_evaluator.hpp"
#include "homotopy/projective.hpp"
#include "homotopy/tracker.hpp"
#include "newton/batch.hpp"
#include "obs/metrics.hpp"
#include "simt/device.hpp"

namespace polyeval::homotopy {

/// The gamma-trick homotopy of homotopy.hpp, evaluated for a batch of
/// points each at its OWN (complex) t -- the lockstep tracker's paths
/// sit at different parameter values after their first diverging step,
/// and the endgame circles t around 1.  The target system f runs on the
/// device in batched launches (evaluate_range / evaluate_values_range);
/// the start system g stays on the CPU per point, as in the sharded
/// per-path tracker.  The per-point combination h = gamma (1-t) g + t f
/// repeats Homotopy::evaluate's arithmetic exactly, so batching changes
/// nothing bitwise.
template <prec::RealScalar S, class TargetEval>
class BatchedHomotopy {
  using C = cplx::Complex<S>;

 public:
  /// Marks this type as a batched homotopy for BatchPathTracker's
  /// generic (externally-constructed) constructor.
  using BatchedHomotopyTag = void;

  BatchedHomotopy(TargetEval& f, ad::CpuEvaluator<S>& g, cplx::Complex<double> gamma)
      : f_(f),
        g_(g),
        gamma_(C::from_double(gamma)),
        max_batch_(f.batch_capacity()),
        g_eval_(f.dimension()),
        g_vals_(f.dimension()) {
    if (f_.dimension() != g_.dimension())
      throw std::invalid_argument("BatchedHomotopy: dimension mismatch");
    const unsigned n = f_.dimension();
    f_chunk_.resize(max_batch_);
    for (auto& r : f_chunk_) r.resize(n);
    f_values_.resize(max_batch_ * std::size_t{n});
    g_values_.resize(max_batch_ * std::size_t{n});
  }

  [[nodiscard]] unsigned dimension() const noexcept { return f_.dimension(); }
  /// Largest evaluate_range chunk (= the device batch capacity); the
  /// O(n^2) Jacobian traffic of any caller is bounded by it.
  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

  /// h(x_{first+i}, ts_{first+i}) for i in [0, count), count <=
  /// max_batch(): values into values[i*n ..], row-major Jacobians into
  /// jacobians[i*n*n ..] (chunk-local indexing, so callers walking a
  /// large set reuse one max_batch-sized scratch).  One device launch;
  /// f and g values are recorded per chunk slot for rhs_from_last.
  void evaluate_range(const std::vector<std::vector<C>>& points,
                      std::span<const C> ts, std::size_t first, std::size_t count,
                      std::span<C> values, std::span<C> jacobians) {
    const unsigned n = dimension();
    const std::size_t nn = std::size_t{n} * n;
    if (count > max_batch_ || ts.size() < first + count || values.size() < count * n ||
        jacobians.size() < count * nn)
      throw std::invalid_argument("BatchedHomotopy: bad batch spans");

    f_.evaluate_range(points, first, count,
                      std::span<poly::EvalResult<S>>(f_chunk_).subspan(0, count));
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot = first + i;
      g_.evaluate(std::span<const C>(points[slot]), g_eval_);
      std::copy(f_chunk_[i].values.begin(), f_chunk_[i].values.end(),
                f_values_.begin() + i * n);
      std::copy(g_eval_.values.begin(), g_eval_.values.end(),
                g_values_.begin() + i * n);
      // Homotopy::evaluate's combination (the shared one copy), per-slot t.
      const detail::GammaBlend<S> blend(gamma_, ts[slot]);
      for (unsigned q = 0; q < n; ++q)
        values[i * n + q] = blend.combine(g_eval_.values[q], f_chunk_[i].values[q]);
      for (std::size_t e = 0; e < nn; ++e)
        jacobians[i * nn + e] =
            blend.combine(g_eval_.jacobian[e], f_chunk_[i].jacobian[e]);
    }
  }

  /// Values-only h(x_{first+i}, ts_{first+i}) into values[i*n ..] for
  /// i in [0, count), any count: the target system runs the fused
  /// values kernel in max_batch-sized launches (no Jacobian work,
  /// n-value downloads) and g its values-only CPU path.  Bitwise equal
  /// to evaluate_range's values.
  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::span<const C> ts, std::size_t first,
                             std::size_t count, std::span<C> values) {
    const unsigned n = dimension();
    if (ts.size() < first + count || values.size() < count * n)
      throw std::invalid_argument("BatchedHomotopy: bad batch spans");

    for (std::size_t c0 = 0; c0 < count; c0 += max_batch_) {
      const std::size_t cnt = std::min(max_batch_, count - c0);
      f_.evaluate_values_range(points, first + c0, cnt,
                               std::span<C>(values).subspan(c0 * n, cnt * n));
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::size_t slot = c0 + i;
        g_.evaluate_values(std::span<const C>(points[first + slot]),
                           std::span<C>(g_vals_));
        const detail::GammaBlend<S> blend(gamma_, ts[first + slot]);
        for (unsigned q = 0; q < n; ++q)
          values[slot * n + q] = blend.combine(g_vals_[q], values[slot * n + q]);
      }
    }
  }

  /// Davidenko right-hand side dh/dt = f(x) - gamma g(x) of chunk slot
  /// i of the most recent evaluate_range call (the predictor follows
  /// the corrector state, as in Homotopy::dt_from_last).
  void rhs_from_last(std::size_t i, std::span<C> out) const {
    const unsigned n = dimension();
    for (unsigned q = 0; q < n; ++q)
      out[q] =
          detail::davidenko_rhs(gamma_, f_values_[i * n + q], g_values_[i * n + q]);
  }

 private:
  TargetEval& f_;
  ad::CpuEvaluator<S>& g_;
  C gamma_;
  std::size_t max_batch_;
  poly::EvalResult<S> g_eval_;                ///< per-point CPU scratch
  std::vector<C> g_vals_;                     ///< per-point values-only scratch
  std::vector<poly::EvalResult<S>> f_chunk_;  ///< device chunk results
  std::vector<C> f_values_, g_values_;        ///< last full eval, per chunk slot
};

/// Lockstep batched tracker over one shard's evaluators.  Load a batch
/// of start roots with start(), then round() until no path is live (or
/// run()); read per-path TrackResults with result().
template <prec::RealScalar S, class TargetOrHomo>
class BatchPathTracker {
  using C = cplx::Complex<S>;
  /// An externally-constructed batched homotopy (projective mode) vs a
  /// bare target evaluator (affine convenience: the tracker builds the
  /// BatchedHomotopy itself).
  static constexpr bool kExternalHomo =
      requires { typename TargetOrHomo::BatchedHomotopyTag; };

 public:
  using Homo =
      std::conditional_t<kExternalHomo, TargetOrHomo, BatchedHomotopy<S, TargetOrHomo>>;

 private:
  /// Multi-tenant homotopies (the solve service's) need the slot id of
  /// every staged point to route it to its own system tables...
  static constexpr bool kSlotAware = newton::SlotAwareEvaluator<Homo>;
  /// ...and take the slot id in their projective hooks too.
  static constexpr bool kSlotProjective =
      requires(Homo& h, std::size_t id, std::span<C> z) { h.renormalize(id, z); };
  static constexpr bool kProjective =
      kSlotProjective || requires(Homo& h, std::span<C> z) { h.renormalize(z); };
  using HomoMember = std::conditional_t<kExternalHomo, Homo&, Homo>;

 public:
  /// Affine convenience: build the gamma-trick BatchedHomotopy over
  /// (f, g) internally.  `max_paths` is the lockstep capacity every
  /// internal buffer is sized for; `device` is the device behind `f`
  /// (its launch log is cleared each round, capacity kept).
  BatchPathTracker(simt::Device& device, TargetOrHomo& f, ad::CpuEvaluator<S>& g,
                   cplx::Complex<double> gamma, TrackOptions options,
                   std::size_t max_paths)
    requires(!kExternalHomo)
      : device_(device), h_(f, g, gamma), options_(options), max_paths_(max_paths) {
    reserve_buffers();
  }

  /// Generic: track over an externally built batched homotopy (e.g.
  /// BatchedProjectiveHomotopy); `device` is the device behind its
  /// target evaluator.
  BatchPathTracker(simt::Device& device, TargetOrHomo& homotopy, TrackOptions options,
                   std::size_t max_paths)
    requires kExternalHomo
      : device_(device), h_(homotopy), options_(options), max_paths_(max_paths) {
    reserve_buffers();
  }

  [[nodiscard]] unsigned dimension() const noexcept { return h_.dimension(); }
  [[nodiscard]] std::size_t max_paths() const noexcept { return max_paths_; }
  [[nodiscard]] std::size_t path_count() const noexcept { return paths_; }
  [[nodiscard]] std::size_t live_paths() const noexcept {
    return active_.size() + endgame_ids_.size();
  }
  [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }

  /// Load paths i = 0..count-1 from roots[first + i] (state reset; the
  /// batch must fit max_paths).  In projective mode roots must already
  /// be embedded in the patch.  Buffers are reused, so a second start()
  /// on a warm tracker allocates nothing.
  void start(const std::vector<std::vector<C>>& roots, std::size_t first,
             std::size_t count) {
    const unsigned n = h_.dimension();
    if (count > max_paths_)
      throw std::invalid_argument("BatchPathTracker: batch exceeds max_paths");
    if (first > roots.size() || count > roots.size() - first)
      throw std::invalid_argument("BatchPathTracker: bad root range");
    paths_ = count;
    rounds_ = 0;
    active_.clear();
    endgame_ids_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      if (roots[first + i].size() != n)
        throw std::invalid_argument("BatchPathTracker: root has wrong dimension");
      auto& s = slots_[i];
      std::copy(roots[first + i].begin(), roots[first + i].end(), s.x.begin());
      s.ctl = detail::initial_step_state(options_);
      s.final_residual = 0.0;
      s.status = PathStatus::kStalled;
      s.winding = 0;
      s.retired = false;
      s.success = false;
      active_.push_back(i);
    }
  }

  /// Seat one path in free slot `slot` with explicit step-control state
  /// -- the solve service's incremental entry point, used both for
  /// fresh admissions (initial_step_state) and for live paths stolen
  /// from another shard's tracker mid-solve (path state is just
  /// (x, t, step, streak); a path's trajectory depends only on its
  /// state and the homotopy, so adoption preserves the bitwise
  /// contract).  The slot must not be live.
  void adopt(std::size_t slot, std::span<const C> x, const detail::StepState& ctl) {
    if (slot >= max_paths_)
      throw std::invalid_argument("BatchPathTracker: bad adopt slot");
    if (x.size() != h_.dimension())
      throw std::invalid_argument("BatchPathTracker: root has wrong dimension");
    for (const std::size_t id : active_)
      if (id == slot) throw std::logic_error("BatchPathTracker: slot is live");
    for (const std::size_t id : endgame_ids_)
      if (id == slot) throw std::logic_error("BatchPathTracker: slot is live");
    auto& s = slots_[slot];
    std::copy(x.begin(), x.end(), s.x.begin());
    s.ctl = ctl;
    s.final_residual = 0.0;
    s.status = PathStatus::kStalled;
    s.winding = 0;
    s.retired = false;
    s.success = false;
    active_.push_back(slot);
    paths_ = std::max(paths_, slot + 1);
    {
      std::lock_guard<std::mutex> lk(cancel_mutex_);
      cancel_flags_[slot] = 0;  // stale flag from the slot's former tenant
    }
  }

  /// Fresh-path adoption: the same loading start() performs per slot.
  void adopt(std::size_t slot, std::span<const C> x) {
    adopt(slot, x, detail::initial_step_state(options_));
  }

  /// Steal the live tracking path out of `slot`: its point is copied to
  /// x_out, its step-control state returned, and the slot freed for
  /// re-adoption.  Only plain tracking paths are donatable -- endgame
  /// paths carry Cauchy accumulator state and are pinned to their shard.
  detail::StepState donate(std::size_t slot, std::span<C> x_out) {
    const auto it = std::find(active_.begin(), active_.end(), slot);
    if (it == active_.end())
      throw std::logic_error("BatchPathTracker: slot not donatable");
    active_.erase(it);  // order-preserving, so later rounds stay deterministic
    auto& s = slots_[slot];
    std::copy(s.x.begin(), s.x.end(), x_out.begin());
    return s.ctl;
  }

  /// True when `slot` holds a tracking path that donate() may take.
  [[nodiscard]] bool donatable(std::size_t slot) const {
    return std::find(active_.begin(), active_.end(), slot) != active_.end();
  }

  /// Whether path i has retired (result() is ready).
  [[nodiscard]] bool retired(std::size_t i) const {
    return i < paths_ && slots_[i].retired;
  }

  [[nodiscard]] const TrackOptions& options() const noexcept { return options_; }

  /// Attach pre-resolved observability counters (obs::TrackerMetrics):
  /// every subsequent round() increments them with relaxed atomic adds
  /// -- no allocation, no launches, no effect on the tracked arithmetic,
  /// so the bitwise and zero-alloc contracts hold instrumented or not.
  /// Deliberately NOT part of TrackOptions: the solve service coalesces
  /// requests by comparing options with operator==, and a pointer in
  /// there would break that.  nullptr detaches.  The struct (typically
  /// shared by every shard of a service) must outlive the tracker.
  void set_metrics(const obs::TrackerMetrics* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Request cooperative cancellation of path `slot`.  Thread-safe (the
  /// async service's clients call it while round() runs); the path
  /// retires as kCancelled at the next consume point -- round entry, or
  /// the corrector mask for cancels landing after the predictor (whose
  /// launch masks they then skip, newton::refine_batch).
  void cancel(std::size_t slot) {
    if (slot >= max_paths_) return;
    std::lock_guard<std::mutex> lk(cancel_mutex_);
    cancel_flags_[slot] = 1;
    cancel_pending_ = true;
  }

  /// Advance every live path one predictor-corrector step (or, for
  /// paths in the endgame, one Cauchy circle sample), classify and
  /// retire this round's finishers, and compact the retirees out of the
  /// live sets.  Returns the number of still-live paths;
  /// allocation-free in steady state.
  std::size_t round() {
    if (active_.empty() && endgame_ids_.empty()) return 0;
    device_.clear_log();
    ++rounds_;
    if (metrics_) metrics_->rounds->inc();
    const unsigned n = h_.dimension();

    // Cancellation consume point 1: requests that arrived between
    // rounds retire before any staging -- no probe launch, cancellation
    // must be cheap.
    if (take_cancel_flags()) {
      sweep_cancelled(active_);
      sweep_cancelled(endgame_ids_);
      if (active_.empty() && endgame_ids_.empty()) return 0;
    }

    newton::NewtonOptions copts;
    copts.max_iterations = options_.corrector_iterations;
    copts.residual_tolerance = options_.corrector_tolerance;

    // Retire exhausted paths first -- the scalar tracker's loop
    // condition, checked before the step -- with one batched probe for
    // their final residuals.  (Endgame paths are exempt: their work is
    // bounded by max_windings loops, not by the step budget.)
    probe_ids_.clear();
    end_ids_.clear();
    std::size_t keep = 0;
    for (const std::size_t id : active_) {
      if (slots_[id].ctl.steps + slots_[id].ctl.rejections >= options_.max_steps)
        probe_ids_.push_back(id);
      else
        active_[keep++] = id;
    }
    active_.resize(keep);

    const std::size_t a = active_.size();
    if (a > 0) {
      // Predictor: full batches at (x_p, t_p) -- Euler along the
      // Davidenko flow, per-path dt clamped to the remaining interval --
      // walked in device-capacity chunks so the Jacobian scratch stays
      // bounded.
      for (std::size_t j = 0; j < a; ++j) {
        const auto& s = slots_[active_[j]];
        dts_[j] = detail::clamped_dt(s.ctl);
        t_next_[j] = detail::step_target(s.ctl, dts_[j]);
        ts_[j] = C(S(s.ctl.t));
        std::copy(s.x.begin(), s.x.end(), batch_pts_[j].begin());
      }
      bind_ids(active_);
      for (std::size_t c0 = 0; c0 < a; c0 += cap_) {
        const std::size_t cc = std::min(cap_, a - c0);
        h_.evaluate_range(batch_pts_, std::span<const C>(ts_), c0, cc,
                          std::span<C>(hv_), std::span<C>(hj_));
        for (std::size_t j = 0; j < cc; ++j)
          h_.rhs_from_last(j, std::span<C>(rhs_).subspan(j * n, n));
        linalg::lu_solve_batch(arena_, cc, std::span<const C>(hj_),
                               std::span<const C>(rhs_), std::span<C>(flow_),
                               std::span<unsigned char>(singular_));
        for (std::size_t j = 0; j < cc; ++j) {
          const std::size_t g = c0 + j;
          std::copy(batch_pts_[g].begin(), batch_pts_[g].end(),
                    corr_pts_[g].begin());
          if (!singular_[j]) {
            // A singular Jacobian mid-path leaves the predictor at the
            // current point; the corrector decides viability (as scalar).
            const S h_dt(dts_[g]);
            for (unsigned v = 0; v < n; ++v)
              corr_pts_[g][v] -= flow_[j * n + v] * h_dt;
          }
          corr_ts_[g] = C(S(t_next_[g]));
        }
      }

      // Cancellation consume point 2: cancels that landed after the
      // predictor mask the corrector instead (an all-masked batch pays
      // no launch at all -- refine_batch's early return), and endgame
      // paths flagged by the same sweep retire before their stage.
      const bool mid_cancel = take_cancel_flags();
      if (mid_cancel) {
        for (std::size_t j = 0; j < a; ++j)
          cancel_mask_[j] = round_cancel_[active_[j]];
        sweep_cancelled(endgame_ids_);
      }

      // Corrector: masked batched Newton at the clamped advanced t.
      newton::refine_batch<S>(
          h_, corr_pts_, std::span<const C>(corr_ts_), a, copts, arena_,
          nscratch_, std::span<newton::BatchPathStatus>(statuses_),
          std::span<const std::size_t>(active_),
          mid_cancel
              ? std::span<const unsigned char>(cancel_mask_.data(), a)
              : std::span<const unsigned char>{});
      if (metrics_)
        for (std::size_t j = 0; j < a; ++j)
          if (!(mid_cancel && cancel_mask_[j]))
            metrics_->newton_iterations_per_path->observe(
                static_cast<double>(statuses_[j].iterations));

      // Per-path step control -- the scalar tracker's accept/reject
      // arithmetic (the shared one copy), path by path.
      keep = 0;
      for (std::size_t j = 0; j < a; ++j) {
        const std::size_t id = active_[j];
        auto& s = slots_[id];
        if (mid_cancel && cancel_mask_[j]) {
          retire(s, PathStatus::kCancelled, s.final_residual);
          continue;
        }
        if (statuses_[j].converged) {
          if (metrics_) metrics_->steps_accepted->inc();
          std::copy(corr_pts_[j].begin(), corr_pts_[j].end(), s.x.begin());
          detail::accept_step(s.ctl, t_next_[j], options_);
          if constexpr (kProjective) {
            renormalize_slot(id, std::span<C>(s.x));
            if (infinity_ratio_slot(id, std::span<const C>(s.x)) <
                options_.at_infinity_tolerance) {
              retire(s, PathStatus::kAtInfinity, statuses_[j].final_residual);
              continue;
            }
          }
          if (s.ctl.t >= 1.0) {
            end_ids_.push_back(id);
            continue;
          }
        } else {
          if (metrics_) {
            metrics_->steps_rejected->inc();
            // The growth streak the rejection wipes (reject_step zeroes
            // it), observed before the reset.
            metrics_->accept_streak->observe(
                static_cast<double>(s.ctl.streak));
          }
          detail::reject_step(s.ctl, options_);
          if constexpr (kProjective) {
            if (detail::endgame_triggered(s.ctl, options_)) {
              s.eg.begin(1.0 - s.ctl.t, std::span<const C>(s.x));
              endgame_ids_.push_back(id);
              if (metrics_) metrics_->endgame_entries->inc();
              continue;
            }
          }
          if (s.ctl.step < options_.min_step) {
            probe_ids_.push_back(id);
            continue;
          }
        }
        active_[keep++] = id;
      }
      active_.resize(keep);
    }

    // Endgame stage (projective): every endgame path advances ONE
    // Cauchy circle sample, all correctors batched into whole-set
    // launches; loops that close hand their integral-mean endpoint to
    // the t = 1 classification below.
    if constexpr (kProjective) {
      if (!endgame_ids_.empty()) {
        const std::size_t e = endgame_ids_.size();
        for (std::size_t j = 0; j < e; ++j) {
          const auto& s = slots_[endgame_ids_[j]];
          std::copy(s.x.begin(), s.x.end(), corr_pts_[j].begin());
          corr_ts_[j] = s.eg.next_t(options_.endgame);
        }
        newton::NewtonOptions egopts = copts;
        egopts.max_iterations = options_.endgame.corrector_iterations;
        egopts.residual_tolerance = options_.endgame.corrector_tolerance;
        newton::refine_batch<S>(h_, corr_pts_, std::span<const C>(corr_ts_), e,
                                egopts, arena_, nscratch_,
                                std::span<newton::BatchPathStatus>(statuses_),
                                std::span<const std::size_t>(endgame_ids_),
                                std::span<const unsigned char>{});
        if (metrics_)
          for (std::size_t j = 0; j < e; ++j)
            metrics_->newton_iterations_per_path->observe(
                static_cast<double>(statuses_[j].iterations));
        keep = 0;
        for (std::size_t j = 0; j < e; ++j) {
          const std::size_t id = endgame_ids_[j];
          auto& s = slots_[id];
          if (!statuses_[j].converged) {
            // Lost the circle at this radius: fail the attempt, restore
            // the theta = 0 point and resume tracking (the shared
            // re-arm arithmetic halves the trigger, as scalar).
            fail_endgame_attempt(s, id);
            continue;
          }
          std::copy(corr_pts_[j].begin(), corr_pts_[j].end(), s.x.begin());
          const auto step =
              s.eg.absorb(std::span<const C>(s.x), options_.endgame);
          if (step == CauchyEndgame<S>::Step::kClosed) {
            s.eg.endpoint(std::span<C>(s.x));
            s.winding = s.eg.winding();
            s.ctl.t = 1.0;
            end_ids_.push_back(id);
            continue;
          }
          if (step == CauchyEndgame<S>::Step::kExhausted) {
            fail_endgame_attempt(s, id);
            continue;
          }
          endgame_ids_[keep++] = id;
        }
        endgame_ids_.resize(keep);
      }
    }

    // Endgame polish + classification at t = 1 for this round's
    // finishers (normal arrivals and closed endgame loops): one batched
    // polish; a diverged polish keeps the tracked point and ITS
    // residual (the polish's entry probe), and the status comes from
    // the kept point's final residual check -- with the projective
    // at-infinity test taking precedence -- exactly as the scalar
    // tracker classifies.
    if (!end_ids_.empty()) {
      const std::size_t e = end_ids_.size();
      for (std::size_t j = 0; j < e; ++j) {
        const auto& s = slots_[end_ids_[j]];
        std::copy(s.x.begin(), s.x.end(), corr_pts_[j].begin());
        corr_ts_[j] = C(S(1.0));
      }
      newton::NewtonOptions eopts;
      eopts.max_iterations = options_.end_iterations;
      eopts.residual_tolerance = options_.end_tolerance;
      newton::refine_batch<S>(h_, corr_pts_, std::span<const C>(corr_ts_), e,
                              eopts, arena_, nscratch_,
                              std::span<newton::BatchPathStatus>(statuses_),
                              std::span<const std::size_t>(end_ids_),
                              std::span<const unsigned char>{});
      if (metrics_)
        for (std::size_t j = 0; j < e; ++j)
          metrics_->newton_iterations_per_path->observe(
              static_cast<double>(statuses_[j].iterations));
      for (std::size_t j = 0; j < e; ++j) {
        auto& s = slots_[end_ids_[j]];
        if (statuses_[j].converged) {
          std::copy(corr_pts_[j].begin(), corr_pts_[j].end(), s.x.begin());
          s.final_residual = statuses_[j].final_residual;
        } else {
          s.final_residual = statuses_[j].initial_residual;
        }
        if constexpr (kProjective) {
          if (infinity_ratio_slot(end_ids_[j], std::span<const C>(s.x)) <
              options_.at_infinity_tolerance) {
            retire(s, PathStatus::kAtInfinity, s.final_residual);
            continue;
          }
          retire(s,
                 detail::projective_endpoint_converged(s.final_residual,
                                                       s.winding, options_)
                     ? PathStatus::kConverged
                     : PathStatus::kDiverged,
                 s.final_residual);
          continue;
        }
        retire(s,
               s.final_residual <= options_.end_tolerance ? PathStatus::kConverged
                                                          : PathStatus::kDiverged,
               s.final_residual);
      }
    }

    // Step-underflow / budget failures: batched residual probe, then
    // retire as stalls.
    retire_failed(probe_ids_);

    // The Newton totals come from the scratch's cumulative counters
    // (the newton-layer plumbing), folded in once per round as deltas.
    if (metrics_) {
      metrics_->newton_calls->inc(nscratch_.calls - newton_calls_seen_);
      metrics_->newton_iterations->inc(nscratch_.iterations_applied -
                                       newton_iters_seen_);
      newton_calls_seen_ = nscratch_.calls;
      newton_iters_seen_ = nscratch_.iterations_applied;
    }

    return active_.size() + endgame_ids_.size();
  }

  /// Rounds until every path retired.
  void run() {
    while (round() > 0) {
    }
  }

  /// Result of path i; throws while the path is still live (round()
  /// until live_paths() == 0, or run()).  Allocates the solution vector
  /// -- call outside the measured steady state.
  [[nodiscard]] TrackResult<S> result(std::size_t i) const {
    if (i >= paths_)
      throw std::invalid_argument("BatchPathTracker: bad path index");
    const auto& s = slots_[i];
    if (!s.retired)
      throw std::logic_error("BatchPathTracker: path still live");
    TrackResult<S> r;
    r.status = s.status;
    r.success = s.success;
    r.steps = s.ctl.steps;
    r.rejections = s.ctl.rejections;
    r.winding = s.winding;
    r.final_residual = s.final_residual;
    r.t_reached = s.ctl.t;
    r.solution.assign(s.x.begin(), s.x.end());
    return r;
  }

 private:
  struct PathSlot {
    std::vector<C> x;
    detail::StepState ctl;
    double final_residual = 0.0;
    PathStatus status = PathStatus::kStalled;
    unsigned winding = 0;
    bool retired = false, success = false;
    CauchyEndgame<S> eg;
  };

  /// Constructor-time buffer sizing shared by both constructors: all
  /// per-path state and batch staging for `max_paths_` paths of the
  /// homotopy's dimension, Jacobian-stage traffic bounded by the device
  /// batch capacity.
  void reserve_buffers() {
    detail::validate_track_options(options_);
    const unsigned n = h_.dimension();
    const std::size_t nn = std::size_t{n} * n;
    cap_ = std::min<std::size_t>(std::max<std::size_t>(h_.max_batch(), 1),
                                 std::max<std::size_t>(max_paths_, 1));
    arena_.resize(n, cap_);
    nscratch_.reserve(n, max_paths_, cap_);
    statuses_.resize(max_paths_);
    slots_.resize(max_paths_);
    for (auto& s : slots_) {
      s.x.resize(n);
      s.eg.reserve(n);
    }
    active_.reserve(max_paths_);
    probe_ids_.reserve(max_paths_);
    end_ids_.reserve(max_paths_);
    endgame_ids_.reserve(max_paths_);
    batch_pts_.resize(max_paths_);
    for (auto& p : batch_pts_) p.resize(n);
    corr_pts_.resize(max_paths_);
    for (auto& p : corr_pts_) p.resize(n);
    ts_.resize(max_paths_);
    corr_ts_.resize(max_paths_);
    dts_.resize(max_paths_);
    t_next_.resize(max_paths_);
    hv_.resize(max_paths_ * std::size_t{n});
    hj_.resize(cap_ * nn);
    rhs_.resize(cap_ * std::size_t{n});
    flow_.resize(cap_ * std::size_t{n});
    singular_.resize(cap_);
    cancel_flags_.assign(max_paths_, 0);
    round_cancel_.assign(max_paths_, 0);
    cancel_mask_.assign(max_paths_, 0);
  }

  /// Point -> slot routing for multi-tenant homotopies: before a staged
  /// launch whose point i came from slot ids[i], hand the id list to a
  /// slot-aware homotopy (no-op for single-tenant homotopies).
  void bind_ids([[maybe_unused]] const std::vector<std::size_t>& ids) {
    if constexpr (kSlotAware) h_.bind_slots(std::span<const std::size_t>(ids));
  }

  /// The projective hooks, routed per slot on multi-tenant homotopies
  /// (each tenant has its own patch).
  void renormalize_slot([[maybe_unused]] std::size_t id,
                        [[maybe_unused]] std::span<C> z) {
    if constexpr (kSlotProjective)
      h_.renormalize(id, z);
    else if constexpr (kProjective)
      h_.renormalize(z);
  }
  [[nodiscard]] double infinity_ratio_slot([[maybe_unused]] std::size_t id,
                                           [[maybe_unused]] std::span<const C> z)
      const {
    if constexpr (kSlotProjective)
      return h_.infinity_ratio(id, z);
    else if constexpr (kProjective)
      return h_.infinity_ratio(z);
    else
      return std::numeric_limits<double>::infinity();  // affine: never at infinity
  }

  /// Copy-and-clear the pending cancel flags into round_cancel_;
  /// returns whether any were set.  The only lock round() takes, held
  /// for two memcpy-sized loops.
  bool take_cancel_flags() {
    std::lock_guard<std::mutex> lk(cancel_mutex_);
    if (!cancel_pending_) return false;
    std::copy(cancel_flags_.begin(), cancel_flags_.end(), round_cancel_.begin());
    std::fill(cancel_flags_.begin(), cancel_flags_.end(), 0);
    cancel_pending_ = false;
    return true;
  }

  /// Retire every round_cancel_-flagged path of `ids` as kCancelled and
  /// compact it out (no probe launch; the last known residual stands).
  void sweep_cancelled(std::vector<std::size_t>& ids) {
    std::size_t keep = 0;
    for (const std::size_t id : ids) {
      if (round_cancel_[id])
        retire(slots_[id], PathStatus::kCancelled, slots_[id].final_residual);
      else
        ids[keep++] = id;
    }
    ids.resize(keep);
  }

  /// A failed endgame attempt (lost sample or no closure): restore the
  /// theta = 0 point, halve the re-arm threshold and hand the path back
  /// to the tracking set -- it creeps closer to t = 1 and retries the
  /// circle at a smaller radius (PathTracker's resume arithmetic,
  /// including the step-underflow death check the scalar loop applies
  /// right after a failed attempt).
  void fail_endgame_attempt(PathSlot& s, std::size_t id) {
    if (metrics_) metrics_->endgame_retries->inc();
    const auto z0 = s.eg.start_point();
    std::copy(z0.begin(), z0.end(), s.x.begin());
    detail::endgame_failed(s.ctl);
    if (s.ctl.step < options_.min_step)
      probe_ids_.push_back(id);  // retired by this round's stall probe
    else
      active_.push_back(id);
  }

  /// Retire a slot with its classified status (success mirrors
  /// kConverged for legacy consumers).
  void retire(PathSlot& s, PathStatus status, double residual) {
    s.status = status;
    s.final_residual = residual;
    s.success = status == PathStatus::kConverged;
    s.retired = true;
    if (metrics_) {
      metrics_->retired_by_status[static_cast<std::size_t>(status)]->inc();
      metrics_->path_steps->observe(static_cast<double>(s.ctl.steps));
    }
  }

  /// Retire `ids` as stalls with one batched values probe at their
  /// current (x, t) -- the scalar tracker's mid-track exit residual.
  void retire_failed(const std::vector<std::size_t>& ids) {
    if (ids.empty()) return;
    const unsigned n = h_.dimension();
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const auto& s = slots_[ids[j]];
      std::copy(s.x.begin(), s.x.end(), batch_pts_[j].begin());
      ts_[j] = C(S(s.ctl.t));
    }
    bind_ids(ids);
    h_.evaluate_values_range(batch_pts_, std::span<const C>(ts_), 0, ids.size(),
                             std::span<C>(hv_));
    for (std::size_t j = 0; j < ids.size(); ++j) {
      auto& s = slots_[ids[j]];
      PathStatus status = PathStatus::kStalled;
      if constexpr (kProjective) {
        // A stop point already on the hyperplane at infinity is a
        // classified endpoint, not a stall (as scalar).
        if (infinity_ratio_slot(ids[j], std::span<const C>(s.x)) <
            options_.at_infinity_tolerance)
          status = PathStatus::kAtInfinity;
      }
      retire(s, status,
             linalg::max_norm_d<S>(std::span<const C>(hv_).subspan(j * n, n)));
    }
  }

  simt::Device& device_;
  HomoMember h_;
  TrackOptions options_;
  const obs::TrackerMetrics* metrics_ = nullptr;
  std::uint64_t newton_calls_seen_ = 0;  ///< scratch counter watermark
  std::uint64_t newton_iters_seen_ = 0;
  std::size_t max_paths_;
  std::size_t cap_ = 0;  ///< Jacobian-stage chunk bound (device batch capacity)
  std::size_t paths_ = 0;
  std::size_t rounds_ = 0;

  std::vector<PathSlot> slots_;
  std::vector<std::size_t> active_;       ///< live tracking path ids
  std::vector<std::size_t> probe_ids_;    ///< this round's stalls
  std::vector<std::size_t> end_ids_;      ///< this round's t = 1 set
  std::vector<std::size_t> endgame_ids_;  ///< paths circling the endgame

  linalg::LuArena<S> arena_;
  newton::RefineBatchScratch<S> nscratch_;
  std::vector<newton::BatchPathStatus> statuses_;

  std::vector<std::vector<C>> batch_pts_;  ///< predictor/probe staging
  std::vector<std::vector<C>> corr_pts_;   ///< corrector/endgame iterates
  std::vector<C> ts_, corr_ts_;            ///< per-slot (complex) parameters
  std::vector<double> dts_;
  std::vector<double> t_next_;  ///< clamped step targets
  std::vector<C> hv_;   ///< batched h values
  std::vector<C> hj_;   ///< batched h Jacobians
  std::vector<C> rhs_;  ///< batched Davidenko right-hand sides
  std::vector<C> flow_; ///< batched predictor flows
  std::vector<unsigned char> singular_;

  std::mutex cancel_mutex_;                  ///< guards the two flag fields
  std::vector<unsigned char> cancel_flags_;  ///< pending cancels, per slot
  bool cancel_pending_ = false;
  std::vector<unsigned char> round_cancel_;  ///< this round's consumed flags
  std::vector<unsigned char> cancel_mask_;   ///< corrector mask staging
};

}  // namespace polyeval::homotopy
