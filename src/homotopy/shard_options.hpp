#pragma once

/// \file shard_options.hpp
/// The sharded solver's option surface, split out of sharded_solver.hpp
/// so the unified `solve::Options` (solve/options.hpp) and the solve
/// service can name these types without pulling in the whole solver --
/// sharded_solver.hpp itself now routes its lockstep mode through the
/// service, and this split is what keeps that include chain acyclic.
///
/// These are the LEGACY spellings: new code should configure solves
/// through `solve::Options`, which nests the same knobs into validated
/// Tracking / Tuning / Sharding sections and bridges both ways.

#include <cstdint>

#include "homotopy/tracker.hpp"
#include "tune/tune_key.hpp"

namespace polyeval::homotopy {

/// Which per-shard device evaluator serves the target system.
enum class ShardEvalBackend {
  kFused,      ///< FusedGpuEvaluator: synchronous single-launch batches
  kPipelined,  ///< PipelinedFusedEvaluator: stream-pipelined micro-chunks
};

/// How a shard advances the paths it owns.
enum class ShardTrackMode {
  /// BatchPathTracker: ALL live paths of the shard advance per round,
  /// predictor/corrector/endgame stages batched into full-set launches
  /// (the default; this is the batch the device schedules were built
  /// for).  Paths are partitioned contiguously across shards.
  kLockstep,
  /// PathTracker, one path per single-point launch, path jobs claimed in
  /// chunks from the shared cursor -- the pre-lockstep schedule, kept as
  /// the parity baseline.
  kPerPath,
};

/// Tracking geometry (see sharded_solver.hpp's file comment).
enum class TrackGeometry {
  /// Patched homogeneous coordinates with at-infinity classification
  /// and the Cauchy endgame: every path terminates classified.
  kProjective,
  /// The historical affine tracker: paths to infinity stall.  Kept as
  /// the default-off escape hatch for parity testing.
  kAffine,
};

/// Legacy flat option struct (prefer solve::Options for new code).
struct ShardedSolveOptions {
  TrackOptions track;
  std::uint64_t gamma_seed = 20120102;
  unsigned shards = 2;
  unsigned workers_per_shard = 1;  ///< device pool threads per shard
  unsigned chunk_paths = 2;        ///< paths per manager claim (per-path mode)
  std::uint64_t max_paths = 0;     ///< 0 = all Bezout paths
  /// Per-shard fused evaluator geometry; 0 = auto -- measured tuning
  /// (tune::Autotuner) by default, or the pick_block_size seed under
  /// kHeuristic tuning: warp blocks for the lockstep mode's SM-filling
  /// batches, widened blocks for the per-path mode's single-point
  /// grids.  Results are bitwise independent of the choice.
  unsigned block_size = 0;
  /// How the shards' evaluators resolve their auto geometry: measured
  /// (autotuned, cached per structure) or the closed-form heuristic.
  tune::TuningMode tuning = tune::TuningMode::kMeasured;
  bool detect_races = false;       ///< run the shards' launches checked
  /// The lockstep tracker batches every predictor/corrector stage over
  /// the shard's live set, so the pipelined backend finally has
  /// transfers worth hiding behind its kernels; in per-path mode both
  /// backends issue the same single-point launches.  Results are
  /// bitwise identical under either.
  ShardEvalBackend backend = ShardEvalBackend::kFused;
  /// Lockstep by default; per-path kept behind the enum for parity
  /// testing (results are bitwise identical across modes).
  ShardTrackMode mode = ShardTrackMode::kLockstep;
  /// Projective by default; affine kept behind the enum (see
  /// TrackGeometry).  Results between the two geometries differ by
  /// construction (different coordinates), but within a geometry every
  /// mode/backend/shard-count combination is bitwise identical.
  TrackGeometry geometry = TrackGeometry::kProjective;
  /// Seed of the random patch hyperplane (projective geometry).
  std::uint64_t patch_seed = 20120717;
  /// Lockstep device batch capacity: live-set launches are chunked to
  /// this many points (also the per-shard evaluator's buffer size).
  unsigned lockstep_batch = 64;
};

}  // namespace polyeval::homotopy
