#pragma once

/// \file homotopy.hpp
/// The gamma-trick linear homotopy h(x, t) = gamma (1-t) g(x) + t f(x):
/// for random complex gamma the paths from the start roots of g to the
/// solutions of f are smooth with probability one.  At fixed t the
/// homotopy is itself an Evaluator, so Newton's method serves directly
/// as the corrector.

#include <random>
#include <span>

#include "newton/newton.hpp"

namespace polyeval::homotopy {

/// A random unit-modulus gamma (seeded for reproducibility).
[[nodiscard]] inline cplx::Complex<double> random_gamma(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
  const double a = angle(rng);
  return {std::cos(a), std::sin(a)};
}

namespace detail {

/// The ONE copy of the gamma-trick combination arithmetic, shared by
/// Homotopy, BatchedHomotopy and the projective homotopies so the
/// lockstep tracker's bitwise contract with the scalar path holds by
/// construction: the pair (a, b) = (gamma (1-t), t) and the per-entry
/// blend a*g + b*f.  t is complex so the Cauchy endgame can circle the
/// parameter around t = 1; for a real t (imaginary part exactly zero)
/// the arithmetic is bit-identical to the former real-t blend.
template <prec::RealScalar S>
struct GammaBlend {
  using C = cplx::Complex<S>;
  C a, b;

  GammaBlend(const C& gamma, const C& t) : a(gamma * (C(S(1.0)) - t)), b(t) {}
  GammaBlend(const C& gamma, const S& t) : GammaBlend(gamma, C(t)) {}

  [[nodiscard]] C combine(const C& g, const C& f) const { return a * g + b * f; }
};

/// The matching one copy of the Davidenko right-hand side
/// dh/dt = f(x) - gamma g(x).
template <prec::RealScalar S>
[[nodiscard]] cplx::Complex<S> davidenko_rhs(const cplx::Complex<S>& gamma,
                                             const cplx::Complex<S>& f,
                                             const cplx::Complex<S>& g) {
  return f - gamma * g;
}

}  // namespace detail

template <prec::RealScalar S, class EvalF, class EvalG>
  requires newton::Evaluator<EvalF, S> && newton::Evaluator<EvalG, S>
class Homotopy {
  using C = cplx::Complex<S>;

 public:
  Homotopy(EvalF& f, EvalG& g, cplx::Complex<double> gamma)
      : f_(f), g_(g), gamma_(C::from_double(gamma)),
        f_eval_(f.dimension()), g_eval_(g.dimension()) {
    if (f.dimension() != g.dimension())
      throw std::invalid_argument("Homotopy: dimension mismatch");
  }

  [[nodiscard]] unsigned dimension() const noexcept { return f_.dimension(); }

  void set_t(const S& t) noexcept { t_ = C(t); }
  /// Complex tracking parameter (the endgame circles t around 1).
  void set_t_complex(const C& t) noexcept { t_ = t; }
  [[nodiscard]] const C& t() const noexcept { return t_; }

  /// h(x, t) and its Jacobian in x at the current t.
  void evaluate(std::span<const C> x, poly::EvalResult<S>& out) {
    f_.evaluate(x, f_eval_);
    g_.evaluate(x, g_eval_);
    const detail::GammaBlend<S> blend(gamma_, t_);
    const unsigned n = dimension();
    out.resize(n);
    for (unsigned i = 0; i < n; ++i)
      out.values[i] = blend.combine(g_eval_.values[i], f_eval_.values[i]);
    for (std::size_t i = 0; i < out.jacobian.size(); ++i)
      out.jacobian[i] = blend.combine(g_eval_.jacobian[i], f_eval_.jacobian[i]);
  }

  /// dh/dt = f(x) - gamma g(x), using the f and g values of the most
  /// recent evaluate() call (predictor step follows the corrector state).
  [[nodiscard]] std::vector<C> dt_from_last() const {
    const unsigned n = dimension();
    std::vector<C> out(n);
    for (unsigned i = 0; i < n; ++i)
      out[i] = detail::davidenko_rhs(gamma_, f_eval_.values[i], g_eval_.values[i]);
    return out;
  }

 private:
  EvalF& f_;
  EvalG& g_;
  C gamma_;
  C t_{S(0.0)};
  poly::EvalResult<S> f_eval_;
  poly::EvalResult<S> g_eval_;
};

}  // namespace polyeval::homotopy
