#include "homotopy/homogenize.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace polyeval::homotopy {

poly::Polynomial homogenize_polynomial(const poly::Polynomial& p, unsigned degree) {
  if (degree < p.degree())
    throw std::invalid_argument("homogenize_polynomial: degree below the polynomial's");
  const unsigned hvar = p.num_vars();
  std::vector<poly::Monomial> monos;
  monos.reserve(p.num_monomials());
  for (const auto& mono : p.monomials()) {
    auto factors = mono.factors();
    const unsigned fill = degree - mono.total_degree();
    if (fill > 0) factors.push_back({hvar, fill});
    monos.emplace_back(mono.coefficient(), std::move(factors));
  }
  return {hvar + 1, std::move(monos)};
}

std::vector<cplx::Complex<double>> random_patch(unsigned dimension,
                                                std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
  std::vector<cplx::Complex<double>> c;
  c.reserve(dimension);
  for (unsigned i = 0; i < dimension; ++i) {
    const double a = angle(rng);
    c.push_back({std::cos(a), std::sin(a)});
  }
  return c;
}

poly::Polynomial patch_polynomial(std::span<const cplx::Complex<double>> c) {
  std::vector<poly::Monomial> monos;
  monos.reserve(c.size() + 1);
  for (unsigned i = 0; i < c.size(); ++i)
    monos.emplace_back(c[i], std::vector<poly::VarPower>{{i, 1}});
  monos.emplace_back(cplx::Complex<double>{-1.0, 0.0}, std::vector<poly::VarPower>{});
  return {static_cast<unsigned>(c.size()), std::move(monos)};
}

poly::PolynomialSystem homogenize(const poly::PolynomialSystem& target,
                                  std::span<const cplx::Complex<double>> c) {
  const unsigned n = target.dimension();
  if (c.size() != n + 1)
    throw std::invalid_argument("homogenize: patch has wrong dimension");
  const auto degrees = target.degrees();
  std::vector<poly::Polynomial> polys;
  polys.reserve(n + 1);
  for (unsigned i = 0; i < n; ++i)
    polys.push_back(homogenize_polynomial(target.polynomial(i), degrees[i]));
  polys.push_back(patch_polynomial(c));
  return poly::PolynomialSystem(std::move(polys));
}

}  // namespace polyeval::homotopy
